#include "aig/aig_random.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "aig/aig_build.hpp"
#include "aig/sim_engine.hpp"

namespace lsml::aig {

double onset_fraction(const Aig& g, std::size_t n, core::Rng& rng) {
  std::vector<core::BitVec> patterns(g.num_pis(), core::BitVec(n));
  std::vector<const core::BitVec*> pi_values;
  pi_values.reserve(patterns.size());
  for (auto& p : patterns) {
    p.randomize(rng);
    pi_values.push_back(&p);
  }
  SimEngine engine(g);
  engine.run(pi_values);
  const Lit out = g.output(0);
  std::size_t ones = engine.count_ones(lit_var(out));
  if (lit_compl(out)) {
    // engine.rows() (not n): a PI-less graph simulates zero rows.
    ones = engine.rows() - ones;
  }
  return static_cast<double>(ones) / static_cast<double>(n);
}

namespace {

// Picks a literal biased toward recently created nodes so cones get depth.
Lit pick_lit(const std::vector<Lit>& pool, core::Rng& rng) {
  const std::uint64_t a = rng.below(pool.size());
  const std::uint64_t b = rng.below(pool.size());
  const Lit base = pool[std::max(a, b)];
  return lit_notc(base, rng.flip(0.5));
}

Aig build_attempt(const ConeOptions& options, core::Rng& rng) {
  Aig g(options.num_inputs);
  std::vector<Lit> pool;
  pool.reserve(options.num_inputs + options.num_ands);
  for (std::uint32_t i = 0; i < options.num_inputs; ++i) {
    pool.push_back(g.pi(i));
  }

  if (options.flavor == ConeFlavor::kArith) {
    // Backbone: add two random sub-words, expose sum bits to the pool.
    const std::uint32_t half = std::max(2u, options.num_inputs / 2);
    std::vector<Lit> wa;
    std::vector<Lit> wb;
    for (std::uint32_t i = 0; i < half; ++i) {
      wa.push_back(lit_notc(g.pi(rng.below(options.num_inputs)), rng.flip(0.3)));
      wb.push_back(lit_notc(g.pi(rng.below(options.num_inputs)), rng.flip(0.3)));
    }
    for (Lit s : ripple_adder(g, wa, wb)) {
      pool.push_back(s);
    }
  }

  const double xor_prob =
      options.flavor == ConeFlavor::kXorRich ? 0.35 : 0.0;
  while (g.num_ands() < options.num_ands) {
    const Lit a = pick_lit(pool, rng);
    const Lit b = pick_lit(pool, rng);
    const Lit r = (xor_prob > 0.0 && rng.flip(xor_prob)) ? g.xor2(a, b)
                                                         : g.and2(a, b);
    if (lit_var(r) != 0) {
      pool.push_back(r);
    }
  }
  // Output mixes nodes spread across the construction so the cone stays
  // wide even for large graphs (sampling only the last few nodes tends to
  // leave most of the structure dangling).
  std::vector<Lit> top;
  const std::size_t mix = std::min<std::size_t>(9, pool.size());
  const std::size_t stride = std::max<std::size_t>(1, pool.size() / (2 * mix));
  for (std::size_t i = 0; i < mix; ++i) {
    top.push_back(lit_notc(pool[pool.size() - 1 - i * stride], rng.flip(0.5)));
  }
  g.add_output(xor_tree(g, std::move(top)));
  return g.cleanup();
}

}  // namespace

Aig random_cone(const ConeOptions& options, core::Rng& rng) {
  Aig best(options.num_inputs);
  bool have_best = false;
  double best_dist = 2.0;
  for (int attempt = 0; attempt < options.max_tries; ++attempt) {
    Aig g = build_attempt(options, rng);
    const bool substantial = g.num_ands() >= options.num_ands / 4;
    if (!substantial && have_best) {
      continue;  // collapsed structurally; not an interesting cone
    }
    const double onset = onset_fraction(g, options.balance_patterns, rng);
    const double dist = std::abs(onset - 0.5);
    // A collapsed attempt is only ever kept as a fallback so the result
    // always has an output; any substantial attempt replaces it.
    if (!have_best || dist < best_dist ||
        (substantial && best.num_ands() < options.num_ands / 4)) {
      best_dist = substantial ? dist : 2.0;
      best = std::move(g);
      have_best = true;
    }
    if (substantial && onset >= options.balance_lo &&
        onset <= options.balance_hi) {
      return best;
    }
  }
  return best;
}

}  // namespace lsml::aig
