#pragma once
// ASCII AIGER (.aag) reading and writing.
//
// The contest exchanged circuits in the AIGER format [Biere et al.]; we
// support the combinational ASCII subset (no latches), which is what the
// contest used.

#include <iosfwd>
#include <string>

#include "aig/aig.hpp"

namespace lsml::aig {

/// Writes a combinational AIG in ASCII AIGER format.
void write_aag(const Aig& aig, std::ostream& os);
void write_aag_file(const Aig& aig, const std::string& path);

/// Parses an ASCII AIGER file. Throws std::runtime_error on malformed input.
Aig read_aag(std::istream& is);
Aig read_aag_file(const std::string& path);

}  // namespace lsml::aig
