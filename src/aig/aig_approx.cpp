#include "aig/aig_approx.hpp"

#include <algorithm>
#include <vector>

#include "aig/sim_engine.hpp"

namespace lsml::aig {

Aig replace_with_constant(const Aig& in, std::uint32_t var, bool value) {
  Aig out(in.num_pis());
  std::vector<Lit> map(in.num_nodes(), kLitFalse);
  for (std::uint32_t i = 0; i < in.num_pis(); ++i) {
    map[i + 1] = out.pi(i);
  }
  for (std::uint32_t v = in.num_pis() + 1; v < in.num_nodes(); ++v) {
    if (v == var) {
      map[v] = value ? kLitTrue : kLitFalse;
      continue;
    }
    const Node& n = in.node(v);
    map[v] = out.and2(lit_notc(map[lit_var(n.fanin0)], lit_compl(n.fanin0)),
                      lit_notc(map[lit_var(n.fanin1)], lit_compl(n.fanin1)));
  }
  for (Lit o : in.outputs()) {
    out.add_output(lit_notc(map[lit_var(o)], lit_compl(o)));
  }
  return out.cleanup();
}

namespace {

// Depth of each node measured from the outputs (0 = drives an output).
std::vector<std::uint32_t> output_distance(const Aig& g) {
  constexpr std::uint32_t kInf = ~0u;
  std::vector<std::uint32_t> dist(g.num_nodes(), kInf);
  for (Lit o : g.outputs()) {
    dist[lit_var(o)] = 0;
  }
  for (std::uint32_t v = g.num_nodes() - 1; v > g.num_pis(); --v) {
    if (dist[v] == kInf) {
      continue;
    }
    for (Lit f : {g.node(v).fanin0, g.node(v).fanin1}) {
      dist[lit_var(f)] = std::min(dist[lit_var(f)], dist[v] + 1);
    }
  }
  return dist;
}

}  // namespace

Aig approximate_to_budget(const Aig& in, const ApproxOptions& options,
                          core::Rng& rng) {
  Aig current = in.cleanup();
  SimEngine engine(current);
  while (current.num_ands() > options.node_budget) {
    // Fresh random patterns each round, as in the original flow.
    std::vector<core::BitVec> patterns(current.num_pis(),
                                       core::BitVec(options.num_patterns));
    std::vector<const core::BitVec*> pi_values;
    pi_values.reserve(patterns.size());
    for (auto& p : patterns) {
      p.randomize(rng);
      pi_values.push_back(&p);
    }
    engine.bind(current);
    engine.run(pi_values);
    const auto dist = output_distance(current);

    std::uint32_t best_var = 0;
    std::size_t best_score = 0;
    bool best_value = false;
    for (std::uint32_t v = current.num_pis() + 1; v < current.num_nodes();
         ++v) {
      if (dist[v] < options.protect_depth) {
        continue;
      }
      // Engine rows honor the tail-zero invariant, so the popcount needs
      // no masking (this used to re-mask the last word by hand).
      const std::size_t ones = engine.count_ones(v);
      const std::size_t zeros = options.num_patterns - ones;
      if (zeros >= ones && zeros > best_score) {
        best_score = zeros;
        best_var = v;
        best_value = false;
      } else if (ones > zeros && ones > best_score) {
        best_score = ones;
        best_var = v;
        best_value = true;
      }
    }
    if (best_var == 0) {
      break;  // everything is protected; cannot shrink further
    }
    Aig next = replace_with_constant(current, best_var, best_value);
    if (next.num_ands() >= current.num_ands()) {
      break;  // no structural progress; avoid infinite loop
    }
    current = std::move(next);
  }
  return current;
}

}  // namespace lsml::aig
