#include "aig/aig_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace lsml::aig {

void write_aag(const Aig& aig, std::ostream& os) {
  // A default/moved-from Aig can have zero nodes (not even the constant);
  // num_nodes() - 1 and num_ands() would underflow to 0xFFFFFFFF and emit
  // garbage. Such an AIG is written as the empty "aag 0 0 0 0 0" module.
  const bool degenerate = aig.num_nodes() == 0;
  const std::uint32_t m =
      degenerate ? 0 : aig.num_nodes() - 1;  // max variable index
  const std::uint32_t i = degenerate ? 0 : aig.num_pis();
  const std::uint32_t a = degenerate ? 0 : aig.num_ands();
  os << "aag " << m << ' ' << i << " 0 " << aig.num_outputs() << ' ' << a
     << '\n';
  for (std::uint32_t k = 0; k < i; ++k) {
    os << aig.pi(k) << '\n';
  }
  for (Lit out : aig.outputs()) {
    os << out << '\n';
  }
  for (std::uint32_t v = i + 1; v <= m; ++v) {
    const Node& n = aig.node(v);
    os << make_lit(v, false) << ' ' << n.fanin0 << ' ' << n.fanin1 << '\n';
  }
}

void write_aag_file(const Aig& aig, const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("cannot open for writing: " + path);
  }
  write_aag(aig, os);
}

Aig read_aag(std::istream& is) {
  std::string magic;
  std::uint32_t m = 0;
  std::uint32_t i = 0;
  std::uint32_t l = 0;
  std::uint32_t o = 0;
  std::uint32_t a = 0;
  if (!(is >> magic >> m >> i >> l >> o >> a) || magic != "aag") {
    throw std::runtime_error("read_aag: bad header");
  }
  if (l != 0) {
    throw std::runtime_error("read_aag: latches not supported");
  }
  if (m != i + a) {
    throw std::runtime_error("read_aag: non-contiguous variable numbering");
  }
  Aig aig(i);
  std::vector<Lit> pi_lits(i);
  for (std::uint32_t k = 0; k < i; ++k) {
    Lit lit = 0;
    if (!(is >> lit) || lit_compl(lit)) {
      throw std::runtime_error("read_aag: bad input literal");
    }
    pi_lits[k] = lit;
  }
  std::vector<Lit> out_lits(o);
  for (auto& lit : out_lits) {
    if (!(is >> lit)) {
      throw std::runtime_error("read_aag: bad output literal");
    }
  }
  // Map from file variable to our literal. PIs are expected in order
  // 2,4,6,... as AIGER recommends; we remap defensively anyway.
  std::vector<Lit> map(m + 1, kLitFalse);
  map[0] = kLitFalse;
  for (std::uint32_t k = 0; k < i; ++k) {
    map[lit_var(pi_lits[k])] = aig.pi(k);
  }
  for (std::uint32_t k = 0; k < a; ++k) {
    Lit lhs = 0;
    Lit rhs0 = 0;
    Lit rhs1 = 0;
    if (!(is >> lhs >> rhs0 >> rhs1) || lit_compl(lhs)) {
      throw std::runtime_error("read_aag: bad and line");
    }
    const Lit f0 = lit_notc(map[lit_var(rhs0)], lit_compl(rhs0));
    const Lit f1 = lit_notc(map[lit_var(rhs1)], lit_compl(rhs1));
    map[lit_var(lhs)] = aig.and2(f0, f1);
  }
  for (Lit lit : out_lits) {
    aig.add_output(lit_notc(map[lit_var(lit)], lit_compl(lit)));
  }
  return aig;
}

Aig read_aag_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("cannot open: " + path);
  }
  return read_aag(is);
}

}  // namespace lsml::aig
