#pragma once
// Shared packed-simulation engine for AIGs.
//
// Every hot loop in the library — learner accuracy scoring, fraig
// signatures, serve eval, approximation scoring, oracle labeling —
// bottoms out in "simulate this AIG over N rows, 64 rows per word".
// SimEngine owns that loop once: one flat word arena of
// num_nodes x words_per_row 64-bit words, driven by the explicit SIMD
// kernels in core/simd.hpp (AVX2/AVX-512/NEON with a scalar fallback,
// selected at runtime) instead of relying on auto-vectorization.
//
// The sweep itself is levelized: on first run after bind() the engine
// precomputes a gate schedule in topo-level-major order, so consecutive
// kernel calls within a level are independent (no store-to-load
// dependency between adjacent gates — the narrow-row case is latency
// bound without this). Wide arenas are processed in L2-sized word-column
// blocks, and run_parallel() partitions word columns across a
// core::ThreadPool: workers write disjoint words, so the result is
// bit-identical to run() by construction, with no merge step.
//
// Invariant: after run(), every node row honors the BitVec tail-zero
// contract (bits past rows() in the last word are zero), so popcount
// reductions and word-wise compares over rows never need masking.
//
// Determinism: results are a pure function of (graph, input rows) —
// bit-identical to Aig::eval_row per row, across every simd backend, and
// between run() and run_parallel() at any thread count.

#include <cstdint>
#include <vector>

#include "core/bits.hpp"
#include "core/simd.hpp"

namespace lsml::core {
class ThreadPool;
}  // namespace lsml::core

namespace lsml::aig {

class Aig;
using Lit = std::uint32_t;

class SimEngine {
 public:
  /// An unbound engine; bind() before the first run(). Exists so scratch
  /// engines (e.g. thread_locals on the serve path) can outlive any graph.
  SimEngine() = default;

  /// Binds to `g`; the graph must outlive the engine (or be rebound).
  explicit SimEngine(const Aig& g) : g_(&g) {}

  /// Rebinds to a graph (e.g. after the caller rebuilt it); keeps the
  /// arena allocation when the new size fits. Invalidates the levelized
  /// schedule — also required when the *bound* graph itself grew (fraig
  /// appends nodes between sweeps), which run() detects on its own.
  void bind(const Aig& g) {
    g_ = &g;
    sched_graph_ = nullptr;
  }
  [[nodiscard]] const Aig& graph() const { return *g_; }

  /// Sweeps the whole graph over the rows in `pi_values` (one BitVec per
  /// PI, all the same size). Extra trailing entries are ignored, matching
  /// the historical Aig::simulate contract.
  void run(const std::vector<const core::BitVec*>& pi_values);

  /// run(), with the sweep's word columns partitioned across `pool`'s
  /// workers. Bit-identical to run() at any thread count (disjoint column
  /// writes, no merging). Narrow batches fall back to the serial sweep;
  /// parallelism pays off from roughly 1024 rows and a few hundred gates.
  /// Must not be called from a worker thread of `pool` itself
  /// (ThreadPool::parallel_for blocks the caller without executing tasks).
  void run_parallel(const std::vector<const core::BitVec*>& pi_values,
                    core::ThreadPool& pool);

  /// Rows in the last run() batch.
  [[nodiscard]] std::size_t rows() const { return rows_; }
  /// 64-bit words per node row.
  [[nodiscard]] std::size_t words_per_row() const { return wpr_; }

  /// Word row of node `var` (valid until the next run/bind).
  [[nodiscard]] const std::uint64_t* row(std::uint32_t var) const {
    return arena_.data() + static_cast<std::size_t>(var) * wpr_;
  }

  /// Values of literal `l` as a tail-masked BitVec (complement applied).
  [[nodiscard]] core::BitVec extract(Lit l) const;

  /// extract() into a caller-owned BitVec, reusing its word buffer when
  /// the capacity fits — the serve eval path calls this per output per
  /// request, where a fresh allocation each time shows up.
  void extract_into(Lit l, core::BitVec* out) const;

  /// One BitVec per graph output — exactly Aig::simulate's result.
  [[nodiscard]] std::vector<core::BitVec> outputs() const;

  /// outputs() into a caller-owned vector (resized to the output count),
  /// reusing each element's buffer via extract_into.
  void outputs_into(std::vector<core::BitVec>* out) const;

  /// Per-node values indexed by var — Aig::simulate_nodes's result, with
  /// every row tail-masked.
  [[nodiscard]] std::vector<core::BitVec> node_values() const;

  /// popcount of node `var`'s row (tail already masked; no correction).
  [[nodiscard]] std::size_t count_ones(std::uint32_t var) const;

  /// Rows where literal `l` agrees with `ref` (ref.size() must equal
  /// rows()). The accuracy kernel: no output BitVec is materialized.
  [[nodiscard]] std::size_t count_equal(Lit l, const core::BitVec& ref) const;

  /// count_equal for a batch of candidate literals against one reference —
  /// one pass over the arena per literal, no per-literal setup. This is
  /// the "score every candidate of one sweep" fusion the learners use.
  void count_equal_many(const Lit* lits, std::size_t n,
                        const core::BitVec& ref, std::size_t* out) const;

 private:
  /// Shared run() prologue: validates inputs, sizes the arena, seeds the
  /// constant + PI rows, and (re)builds the levelized schedule when stale.
  /// Returns false when there is nothing to sweep (zero rows).
  bool prepare(const std::vector<const core::BitVec*>& pi_values);
  void rebuild_schedule();
  /// Sweeps word columns [w0, w1) of every scheduled gate, tiling to
  /// L2-sized blocks of the arena.
  void sweep_columns(std::size_t w0, std::size_t w1);

  const Aig* g_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t wpr_ = 0;
  std::uint64_t tail_mask_ = ~0ULL;
  std::vector<std::uint64_t> arena_;

  // Levelized schedule: all AND gates in topo-level-major order (stable by
  // var within a level). Valid for (sched_graph_, sched_nodes_); fraig
  // grows the bound graph in place, so node count is part of the key.
  std::vector<core::simd::SweepGate> gates_;
  const Aig* sched_graph_ = nullptr;
  std::uint32_t sched_nodes_ = 0;
};

}  // namespace lsml::aig
