#pragma once
// Shared packed-simulation engine for AIGs.
//
// Every hot loop in the library — learner accuracy scoring, fraig
// signatures, serve eval, approximation scoring, oracle labeling —
// bottoms out in "simulate this AIG over N rows, 64 rows per word".
// SimEngine owns that loop once: one flat word arena of
// num_nodes x words_per_row 64-bit words, swept in topological order
// with no per-call allocation (the arena is reused across run() calls),
// and an inner loop processed in unrolled 4-wide word blocks the
// compiler auto-vectorizes to AVX2/NEON.
//
// Invariant: after run(), every node row honors the BitVec tail-zero
// contract (bits past rows() in the last word are zero), so popcount
// reductions and word-wise compares over rows never need masking.
//
// Determinism: results are a pure function of (graph, input rows) —
// bit-identical to Aig::eval_row per row and to the historical
// Aig::simulate output extraction, which is now a thin wrapper here.

#include <cstdint>
#include <vector>

#include "core/bits.hpp"

namespace lsml::aig {

class Aig;
using Lit = std::uint32_t;

class SimEngine {
 public:
  /// Binds to `g`; the graph must outlive the engine (or be rebound).
  explicit SimEngine(const Aig& g) : g_(&g) {}

  /// Rebinds to a graph (e.g. after the caller rebuilt it); keeps the
  /// arena allocation when the new size fits.
  void bind(const Aig& g) { g_ = &g; }
  [[nodiscard]] const Aig& graph() const { return *g_; }

  /// Sweeps the whole graph over the rows in `pi_values` (one BitVec per
  /// PI, all the same size). Extra trailing entries are ignored, matching
  /// the historical Aig::simulate contract.
  void run(const std::vector<const core::BitVec*>& pi_values);

  /// Rows in the last run() batch.
  [[nodiscard]] std::size_t rows() const { return rows_; }
  /// 64-bit words per node row.
  [[nodiscard]] std::size_t words_per_row() const { return wpr_; }

  /// Word row of node `var` (valid until the next run/bind).
  [[nodiscard]] const std::uint64_t* row(std::uint32_t var) const {
    return arena_.data() + static_cast<std::size_t>(var) * wpr_;
  }

  /// Values of literal `l` as a tail-masked BitVec (complement applied).
  [[nodiscard]] core::BitVec extract(Lit l) const;

  /// One BitVec per graph output — exactly Aig::simulate's result.
  [[nodiscard]] std::vector<core::BitVec> outputs() const;

  /// Per-node values indexed by var — Aig::simulate_nodes's result, with
  /// every row tail-masked.
  [[nodiscard]] std::vector<core::BitVec> node_values() const;

  /// popcount of node `var`'s row (tail already masked; no correction).
  [[nodiscard]] std::size_t count_ones(std::uint32_t var) const;

  /// Rows where literal `l` agrees with `ref` (ref.size() must equal
  /// rows()). The accuracy kernel: no output BitVec is materialized.
  [[nodiscard]] std::size_t count_equal(Lit l, const core::BitVec& ref) const;

 private:
  const Aig* g_;
  std::size_t rows_ = 0;
  std::size_t wpr_ = 0;
  std::vector<std::uint64_t> arena_;
};

}  // namespace lsml::aig
