#pragma once
// Seeded random logic-cone generation.
//
// Substitute for the PicoJava / MCNC i10 / cordic / too_large cones used in
// benchmarks ex50-ex73 (see DESIGN.md): the contest treated those as
// arbitrary logic cones with a given input count and a roughly balanced
// onset/offset, which is exactly what these generators produce.

#include <cstdint>

#include "aig/aig.hpp"
#include "core/rng.hpp"

namespace lsml::aig {

enum class ConeFlavor {
  kRandom,   ///< plain random AND/complement structure (i10 / PicoJava-like)
  kXorRich,  ///< sprinkles XOR nodes (cordic / t481-like substitutes)
  kArith,    ///< adder-backboned mixing (arithmetic-flavoured cones)
};

struct ConeOptions {
  std::uint32_t num_inputs = 32;
  std::uint32_t num_ands = 600;     ///< construction target (pre-cleanup)
  ConeFlavor flavor = ConeFlavor::kRandom;
  double balance_lo = 0.35;         ///< required onset fraction window
  double balance_hi = 0.65;
  int max_tries = 200;
  std::size_t balance_patterns = 4096;
};

/// Generates a single-output cone meeting the balance requirement; the
/// attempt whose onset fraction is closest to 1/2 is returned if no attempt
/// lands inside the window.
Aig random_cone(const ConeOptions& options, core::Rng& rng);

/// Onset fraction of output 0 under `n` random patterns.
double onset_fraction(const Aig& g, std::size_t n, core::Rng& rng);

}  // namespace lsml::aig
