#include "aig/aig_opt.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <vector>

#include "aig/aig_build.hpp"
#include "tt/isop.hpp"

namespace lsml::aig {

namespace {

// ---------------------------------------------------------------- balance

class Balancer {
 public:
  explicit Balancer(const Aig& in)
      : in_(in), out_(in.num_pis()), refs_(in.fanout_counts()),
        map_(in.num_nodes(), kLitFalse) {
    for (std::uint32_t i = 0; i < in.num_pis(); ++i) {
      map_[i + 1] = out_.pi(i);
    }
    new_level_.assign(out_.num_nodes(), 0);
  }

  Aig run() {
    // Only rebuild the output cones; levels drive pairing order.
    for (Lit o : in_.outputs()) {
      out_.add_output(build(o));
    }
    return out_;
  }

 private:
  // Collects the leaves of the maximal AND tree rooted at var. Descends
  // through non-complemented AND fanins with a single fanout only, so no
  // shared logic is duplicated.
  void collect_leaves(std::uint32_t var, std::vector<Lit>& leaves) {
    for (Lit f : {in_.node(var).fanin0, in_.node(var).fanin1}) {
      const std::uint32_t fv = lit_var(f);
      if (!lit_compl(f) && in_.is_and(fv) && refs_[fv] == 1) {
        collect_leaves(fv, leaves);
      } else {
        leaves.push_back(f);
      }
    }
  }

  std::uint32_t level_of(Lit l) {
    const std::uint32_t v = lit_var(l);
    return v < new_level_.size() ? new_level_[v] : 0;
  }

  Lit and2_tracked(Lit a, Lit b) {
    const Lit r = out_.and2(a, b);
    const std::uint32_t v = lit_var(r);
    if (v >= new_level_.size()) {
      new_level_.resize(out_.num_nodes(), 0);
      new_level_[v] = 1 + std::max(level_of(a), level_of(b));
    }
    return r;
  }

  Lit build(Lit old) {
    const std::uint32_t var = lit_var(old);
    if (map_[var] == kLitFalse && in_.is_and(var)) {
      std::vector<Lit> leaves;
      collect_leaves(var, leaves);
      std::vector<Lit> built;
      built.reserve(leaves.size());
      for (Lit l : leaves) {
        built.push_back(build(l));
      }
      // Huffman-style pairing: always combine the two shallowest operands.
      while (built.size() > 1) {
        std::sort(built.begin(), built.end(), [&](Lit x, Lit y) {
          return level_of(x) > level_of(y);
        });
        const Lit a = built.back();
        built.pop_back();
        const Lit b = built.back();
        built.pop_back();
        built.push_back(and2_tracked(a, b));
      }
      map_[var] = built[0];
    }
    return lit_notc(map_[var], lit_compl(old));
  }

  const Aig& in_;
  Aig out_;
  std::vector<std::uint32_t> refs_;
  std::vector<Lit> map_;
  std::vector<std::uint32_t> new_level_;
};

// ---------------------------------------------------------------- rewrite

/// Largest cut the rewriter handles: 6 leaves fit a 64-bit truth table.
constexpr int kMaxCutSize = 6;

/// Projection of leaf 0, padded to kMaxCutSize variables.
constexpr std::uint64_t kLeaf0Projection = 0xaaaaaaaaaaaaaaaaULL;

struct Cut {
  std::array<std::uint32_t, kMaxCutSize> leaves{};  // sorted variable ids
  int num_leaves = 0;
  std::uint64_t tt = 0;  // truth table over the leaves

  bool operator==(const Cut& o) const {
    return num_leaves == o.num_leaves && leaves == o.leaves && tt == o.tt;
  }
};

// Expands a truth table over `cut` leaves to one over `merged` leaves.
std::uint64_t expand_tt(std::uint64_t tt, const Cut& cut, const Cut& merged) {
  std::uint64_t result = 0;
  for (int m = 0; m < (1 << merged.num_leaves); ++m) {
    int sub = 0;
    for (int i = 0; i < cut.num_leaves; ++i) {
      // Position of cut leaf i inside merged leaves.
      int pos = 0;
      while (merged.leaves[pos] != cut.leaves[i]) {
        ++pos;
      }
      if (m & (1 << pos)) {
        sub |= 1 << i;
      }
    }
    if (tt & (1ULL << sub)) {
      result |= 1ULL << m;
    }
  }
  return result;
}

bool merge_cuts(const Cut& a, const Cut& b, int max_size, Cut* out) {
  Cut merged;
  int i = 0;
  int j = 0;
  while (i < a.num_leaves || j < b.num_leaves) {
    std::uint32_t next = 0;
    if (i < a.num_leaves && (j >= b.num_leaves || a.leaves[i] <= b.leaves[j])) {
      next = a.leaves[i++];
      if (j < b.num_leaves && b.leaves[j] == next) {
        ++j;
      }
    } else {
      next = b.leaves[j++];
    }
    if (merged.num_leaves == max_size) {
      return false;
    }
    merged.leaves[merged.num_leaves++] = next;
  }
  *out = merged;
  return true;
}

class Rewriter {
 public:
  Rewriter(const Aig& in, int cut_size, int cuts_per_node)
      : in_(in), cut_size_(std::clamp(cut_size, 2, kMaxCutSize)),
        cuts_per_node_(std::max(cuts_per_node, 1)),
        refs_(in.fanout_counts()) {}

  Aig run() {
    enumerate_cuts();
    choose_rewrites();
    return rebuild();
  }

 private:
  void enumerate_cuts() {
    cuts_.resize(in_.num_nodes());
    for (std::uint32_t v = 1; v < in_.num_nodes(); ++v) {
      Cut trivial;
      trivial.num_leaves = 1;
      trivial.leaves[0] = v;
      trivial.tt = kLeaf0Projection;
      if (!in_.is_and(v)) {
        cuts_[v] = {trivial};
        continue;
      }
      const Node& n = in_.node(v);
      std::vector<Cut> result;
      for (const Cut& ca : cuts_[lit_var(n.fanin0)]) {
        for (const Cut& cb : cuts_[lit_var(n.fanin1)]) {
          Cut merged;
          if (!merge_cuts(ca, cb, cut_size_, &merged)) {
            continue;
          }
          std::uint64_t ta = expand_tt(ca.tt, ca, merged);
          std::uint64_t tb = expand_tt(cb.tt, cb, merged);
          if (lit_compl(n.fanin0)) {
            ta = ~ta;
          }
          if (lit_compl(n.fanin1)) {
            tb = ~tb;
          }
          merged.tt = mask_tt(ta & tb, merged.num_leaves);
          if (std::find(result.begin(), result.end(), merged) ==
              result.end()) {
            result.push_back(merged);
          }
          if (result.size() >=
              static_cast<std::size_t>(cuts_per_node_)) {
            goto done;
          }
        }
      }
    done:
      result.push_back(trivial);
      cuts_[v] = std::move(result);
    }
  }

  static std::uint64_t mask_tt(std::uint64_t tt, int vars) {
    if (vars >= kMaxCutSize) {
      return tt;
    }
    const int bits = 1 << vars;
    // Replicate the low 2^vars bits to fill 64 (keeps expand_tt simple).
    std::uint64_t out = tt & ((1ULL << bits) - 1);
    for (int b = bits; b < 64; b <<= 1) {
      out |= out << b;
    }
    return out;
  }

  // MFFC size of v limited to the given cut: number of AND nodes freed if v
  // were replaced. Uses the classic dereference/re-reference walk so the
  // shared reference counts are restored afterwards (no O(n) copies).
  int mffc_size(std::uint32_t v, const Cut& cut) {
    const int freed = deref(v, cut);
    reref(v, cut);
    return freed;
  }

  bool is_cut_leaf(std::uint32_t v, const Cut& cut) const {
    for (int i = 0; i < cut.num_leaves; ++i) {
      if (cut.leaves[i] == v) {
        return true;
      }
    }
    return false;
  }

  int deref(std::uint32_t v, const Cut& cut) {
    int freed = 1;
    for (Lit f : {in_.node(v).fanin0, in_.node(v).fanin1}) {
      const std::uint32_t fv = lit_var(f);
      if (!in_.is_and(fv) || is_cut_leaf(fv, cut)) {
        continue;
      }
      if (--refs_[fv] == 0) {
        freed += deref(fv, cut);
      }
    }
    return freed;
  }

  void reref(std::uint32_t v, const Cut& cut) {
    for (Lit f : {in_.node(v).fanin0, in_.node(v).fanin1}) {
      const std::uint32_t fv = lit_var(f);
      if (!in_.is_and(fv) || is_cut_leaf(fv, cut)) {
        continue;
      }
      if (refs_[fv]++ == 0) {
        reref(fv, cut);
      }
    }
  }

  void choose_rewrites() {
    chosen_.assign(in_.num_nodes(), -1);
    for (std::uint32_t v = in_.num_pis() + 1; v < in_.num_nodes(); ++v) {
      int best_gain = 0;
      for (std::size_t c = 0; c < cuts_[v].size(); ++c) {
        const Cut& cut = cuts_[v][c];
        if (cut.num_leaves < 2 ||
            (cut.num_leaves == 2 && is_cut_leaf(lit_var(in_.node(v).fanin0), cut) &&
             is_cut_leaf(lit_var(in_.node(v).fanin1), cut))) {
          continue;  // trivial or identical to the node itself
        }
        const int old_cost = mffc_size(v, cut);
        const int new_cost = resynth_cost(cut);
        const int gain = old_cost - new_cost;
        if (gain > best_gain) {
          best_gain = gain;
          chosen_[v] = static_cast<int>(c);
        }
      }
    }
  }

  tt::TruthTable cut_tt(const Cut& cut) const {
    tt::TruthTable f(cut.num_leaves);
    for (int m = 0; m < (1 << cut.num_leaves); ++m) {
      if (cut.tt & (1ULL << m)) {
        f.set(static_cast<std::uint64_t>(m), true);
      }
    }
    return f;
  }

  int resynth_cost(const Cut& cut) const {
    const auto f = cut_tt(cut);
    const int pos = tt::sop_gate_cost(tt::isop(f));
    const int neg = tt::sop_gate_cost(tt::isop(~f));
    return std::min(pos, neg);
  }

  Aig rebuild() {
    Aig out(in_.num_pis());
    std::vector<Lit> map(in_.num_nodes(), kLitFalse);
    for (std::uint32_t i = 0; i < in_.num_pis(); ++i) {
      map[i + 1] = out.pi(i);
    }
    for (std::uint32_t v = in_.num_pis() + 1; v < in_.num_nodes(); ++v) {
      if (chosen_[v] >= 0) {
        const Cut& cut = cuts_[v][static_cast<std::size_t>(chosen_[v])];
        std::vector<Lit> leaves;
        leaves.reserve(static_cast<std::size_t>(cut.num_leaves));
        for (int i = 0; i < cut.num_leaves; ++i) {
          leaves.push_back(map[cut.leaves[i]]);
        }
        map[v] = from_truth_table(out, cut_tt(cut), leaves);
      } else {
        const Node& n = in_.node(v);
        map[v] = out.and2(lit_notc(map[lit_var(n.fanin0)], lit_compl(n.fanin0)),
                          lit_notc(map[lit_var(n.fanin1)], lit_compl(n.fanin1)));
      }
    }
    for (Lit o : in_.outputs()) {
      out.add_output(lit_notc(map[lit_var(o)], lit_compl(o)));
    }
    return out.cleanup();
  }

  const Aig& in_;
  int cut_size_;
  int cuts_per_node_;
  std::vector<std::uint32_t> refs_;
  std::vector<std::vector<Cut>> cuts_;
  std::vector<int> chosen_;
};

}  // namespace

Aig balance(const Aig& in) { return Balancer(in).run(); }

Aig rewrite(const Aig& in, int cut_size, int cuts_per_node) {
  return Rewriter(in, cut_size, cuts_per_node).run();
}

Aig optimize(const Aig& in, int max_rounds) {
  Aig best = in.cleanup();
  for (int round = 0; round < max_rounds; ++round) {
    Aig candidate = rewrite(balance(best));
    candidate = candidate.cleanup();
    if (candidate.num_ands() >= best.num_ands()) {
      break;
    }
    best = std::move(candidate);
  }
  // Final depth pass if it does not cost size.
  Aig balanced = balance(best).cleanup();
  if (balanced.num_ands() <= best.num_ands() &&
      balanced.num_levels() < best.num_levels()) {
    return balanced;
  }
  return best;
}

}  // namespace lsml::aig
