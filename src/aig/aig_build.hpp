#pragma once
// Structural AIG builders for standard functions.
//
// These serve three roles in the reproduction:
//  * exact circuits emitted by standard-function matching (Teams 1 and 7),
//  * aggregation logic for learned ensembles (majority voters, Team 7's
//    3-layer 5-input majority network),
//  * symmetric-function construction from a popcount signature (ex75-79).

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "tt/isop.hpp"
#include "tt/truth_table.hpp"

namespace lsml::aig {

/// Balanced AND tree over `lits` (empty -> constant true).
Lit and_tree(Aig& g, std::vector<Lit> lits);
/// Balanced OR tree over `lits` (empty -> constant false).
Lit or_tree(Aig& g, std::vector<Lit> lits);
/// Balanced XOR tree (empty -> constant false).
Lit xor_tree(Aig& g, std::vector<Lit> lits);

/// Ripple-carry adder; returns sum bits (LSB first, size = max(|a|,|b|)+1).
std::vector<Lit> ripple_adder(Aig& g, const std::vector<Lit>& a,
                              const std::vector<Lit>& b);

/// a > b for unsigned LSB-first words of equal width.
Lit greater_than(Aig& g, const std::vector<Lit>& a, const std::vector<Lit>& b);
/// a >= b.
Lit greater_equal(Aig& g, const std::vector<Lit>& a,
                  const std::vector<Lit>& b);
/// a == b.
Lit equals(Aig& g, const std::vector<Lit>& a, const std::vector<Lit>& b);

/// Binary population count of `lits` (LSB-first result).
std::vector<Lit> popcount(Aig& g, const std::vector<Lit>& lits);

/// popcount(lits) >= k.
Lit threshold_ge(Aig& g, const std::vector<Lit>& lits, std::uint32_t k);

/// Strict majority of an odd number of literals.
Lit majority(Aig& g, const std::vector<Lit>& lits);

/// Team 7's approximation of a 125-input majority: a 3-layer network of
/// 5-input majority gates. `lits.size()` must be 125.
Lit majority125_network(Aig& g, const std::vector<Lit>& lits);

/// Totally symmetric function from its signature: output is signature[c]
/// when exactly c inputs are 1. signature.size() must be lits.size()+1.
Lit symmetric_function(Aig& g, const std::vector<Lit>& lits,
                       const std::vector<bool>& signature);

/// Array multiplier; returns the 2n product bits (LSB first).
std::vector<Lit> multiplier(Aig& g, const std::vector<Lit>& a,
                            const std::vector<Lit>& b);

/// Builds a truth table (<= 16 vars) over the given leaf literals via ISOP,
/// choosing the cheaper of covering f or ~f.
Lit from_truth_table(Aig& g, const tt::TruthTable& f,
                     const std::vector<Lit>& leaves);

/// Builds a small-cube cover over leaf literals as a two-level AND/OR tree.
Lit from_cover(Aig& g, const std::vector<tt::SmallCube>& cubes,
               const std::vector<Lit>& leaves);

}  // namespace lsml::aig
