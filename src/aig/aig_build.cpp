#include "aig/aig_build.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace lsml::aig {

namespace {

template <typename Combine>
Lit balanced_tree(Aig& g, std::vector<Lit> lits, Lit empty_value,
                  Combine combine) {
  if (lits.empty()) {
    return empty_value;
  }
  // Pairwise reduction keeps the tree balanced without sorting by level.
  while (lits.size() > 1) {
    std::vector<Lit> next;
    next.reserve((lits.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < lits.size(); i += 2) {
      next.push_back(combine(g, lits[i], lits[i + 1]));
    }
    if (lits.size() & 1) {
      next.push_back(lits.back());
    }
    lits = std::move(next);
  }
  return lits[0];
}

}  // namespace

Lit and_tree(Aig& g, std::vector<Lit> lits) {
  return balanced_tree(g, std::move(lits), kLitTrue,
                       [](Aig& a, Lit x, Lit y) { return a.and2(x, y); });
}

Lit or_tree(Aig& g, std::vector<Lit> lits) {
  return balanced_tree(g, std::move(lits), kLitFalse,
                       [](Aig& a, Lit x, Lit y) { return a.or2(x, y); });
}

Lit xor_tree(Aig& g, std::vector<Lit> lits) {
  return balanced_tree(g, std::move(lits), kLitFalse,
                       [](Aig& a, Lit x, Lit y) { return a.xor2(x, y); });
}

std::vector<Lit> ripple_adder(Aig& g, const std::vector<Lit>& a,
                              const std::vector<Lit>& b) {
  const std::size_t width = std::max(a.size(), b.size());
  std::vector<Lit> sum;
  sum.reserve(width + 1);
  Lit carry = kLitFalse;
  for (std::size_t i = 0; i < width; ++i) {
    const Lit x = i < a.size() ? a[i] : kLitFalse;
    const Lit y = i < b.size() ? b[i] : kLitFalse;
    const Lit xy = g.xor2(x, y);
    sum.push_back(g.xor2(xy, carry));
    carry = g.or2(g.and2(x, y), g.and2(xy, carry));
  }
  sum.push_back(carry);
  return sum;
}

Lit greater_than(Aig& g, const std::vector<Lit>& a,
                 const std::vector<Lit>& b) {
  assert(a.size() == b.size());
  // Iterate LSB -> MSB: gt = (a_i & !b_i) | (a_i==b_i) & gt_below.
  Lit gt = kLitFalse;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Lit ai_gt = g.and2(a[i], lit_not(b[i]));
    const Lit eq = g.xnor2(a[i], b[i]);
    gt = g.or2(ai_gt, g.and2(eq, gt));
  }
  return gt;
}

Lit greater_equal(Aig& g, const std::vector<Lit>& a,
                  const std::vector<Lit>& b) {
  return lit_not(greater_than(g, b, a));
}

Lit equals(Aig& g, const std::vector<Lit>& a, const std::vector<Lit>& b) {
  assert(a.size() == b.size());
  std::vector<Lit> bits;
  bits.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    bits.push_back(g.xnor2(a[i], b[i]));
  }
  return and_tree(g, std::move(bits));
}

std::vector<Lit> popcount(Aig& g, const std::vector<Lit>& lits) {
  if (lits.empty()) {
    return {kLitFalse};
  }
  // Merge-adder tree: maintain a list of binary counts and add pairwise.
  std::vector<std::vector<Lit>> counts;
  counts.reserve(lits.size());
  for (Lit l : lits) {
    counts.push_back({l});
  }
  while (counts.size() > 1) {
    std::vector<std::vector<Lit>> next;
    next.reserve((counts.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < counts.size(); i += 2) {
      next.push_back(ripple_adder(g, counts[i], counts[i + 1]));
    }
    if (counts.size() & 1) {
      next.push_back(counts.back());
    }
    counts = std::move(next);
  }
  return counts[0];
}

namespace {

std::vector<Lit> constant_word(std::uint32_t value, std::size_t width) {
  std::vector<Lit> bits(width, kLitFalse);
  for (std::size_t i = 0; i < width; ++i) {
    if (value & (1u << i)) {
      bits[i] = kLitTrue;
    }
  }
  return bits;
}

}  // namespace

Lit threshold_ge(Aig& g, const std::vector<Lit>& lits, std::uint32_t k) {
  if (k == 0) {
    return kLitTrue;
  }
  if (k > lits.size()) {
    return kLitFalse;
  }
  const auto count = popcount(g, lits);
  return greater_equal(g, count, constant_word(k, count.size()));
}

Lit majority(Aig& g, const std::vector<Lit>& lits) {
  if (lits.size() == 3) {
    return g.maj3(lits[0], lits[1], lits[2]);
  }
  return threshold_ge(g, lits,
                      static_cast<std::uint32_t>(lits.size() / 2 + 1));
}

Lit majority125_network(Aig& g, const std::vector<Lit>& lits) {
  if (lits.size() != 125) {
    throw std::invalid_argument("majority125_network needs 125 literals");
  }
  std::vector<Lit> layer = lits;
  while (layer.size() > 1) {
    std::vector<Lit> next;
    next.reserve(layer.size() / 5);
    for (std::size_t i = 0; i < layer.size(); i += 5) {
      const std::vector<Lit> group(layer.begin() + static_cast<long>(i),
                                   layer.begin() + static_cast<long>(i + 5));
      next.push_back(majority(g, group));
    }
    layer = std::move(next);
  }
  return layer[0];
}

Lit symmetric_function(Aig& g, const std::vector<Lit>& lits,
                       const std::vector<bool>& signature) {
  if (signature.size() != lits.size() + 1) {
    throw std::invalid_argument("symmetric_function: bad signature length");
  }
  const auto count = popcount(g, lits);
  std::vector<Lit> terms;
  for (std::uint32_t c = 0; c <= lits.size(); ++c) {
    if (signature[c]) {
      terms.push_back(equals(g, count, constant_word(c, count.size())));
    }
  }
  return or_tree(g, std::move(terms));
}

std::vector<Lit> multiplier(Aig& g, const std::vector<Lit>& a,
                            const std::vector<Lit>& b) {
  std::vector<std::vector<Lit>> partials;
  partials.reserve(b.size());
  for (std::size_t j = 0; j < b.size(); ++j) {
    std::vector<Lit> row(j, kLitFalse);  // shift by j
    row.reserve(j + a.size());
    for (Lit ai : a) {
      row.push_back(g.and2(ai, b[j]));
    }
    partials.push_back(std::move(row));
  }
  while (partials.size() > 1) {
    std::vector<std::vector<Lit>> next;
    for (std::size_t i = 0; i + 1 < partials.size(); i += 2) {
      next.push_back(ripple_adder(g, partials[i], partials[i + 1]));
    }
    if (partials.size() & 1) {
      next.push_back(partials.back());
    }
    partials = std::move(next);
  }
  auto product = partials[0];
  product.resize(a.size() + b.size(), kLitFalse);
  return product;
}

Lit from_cover(Aig& g, const std::vector<tt::SmallCube>& cubes,
               const std::vector<Lit>& leaves) {
  std::vector<Lit> terms;
  terms.reserve(cubes.size());
  for (const auto& cube : cubes) {
    std::vector<Lit> lits;
    for (std::size_t v = 0; v < leaves.size(); ++v) {
      if (cube.pos & (1u << v)) {
        lits.push_back(leaves[v]);
      }
      if (cube.neg & (1u << v)) {
        lits.push_back(lit_not(leaves[v]));
      }
    }
    terms.push_back(and_tree(g, std::move(lits)));
  }
  return or_tree(g, std::move(terms));
}

Lit from_truth_table(Aig& g, const tt::TruthTable& f,
                     const std::vector<Lit>& leaves) {
  assert(static_cast<std::size_t>(f.num_vars()) == leaves.size());
  if (f.is_const0()) {
    return kLitFalse;
  }
  if (f.is_const1()) {
    return kLitTrue;
  }
  const auto cover_pos = tt::isop(f);
  const auto cover_neg = tt::isop(~f);
  if (tt::sop_gate_cost(cover_neg) < tt::sop_gate_cost(cover_pos)) {
    return lit_not(from_cover(g, cover_neg, leaves));
  }
  return from_cover(g, cover_pos, leaves);
}

}  // namespace lsml::aig
