#include "aig/aig.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "aig/sim_engine.hpp"

namespace lsml::aig {

namespace {

/// Initial unique-table bucket count (power of two, grown on demand).
constexpr std::uint32_t kInitialBuckets = 64;

/// SplitMix64 finalizer over the fanin pair: full-avalanche so chains stay
/// short under the regular literal patterns real circuits produce.
[[nodiscard]] std::uint64_t strash_hash(Lit a, Lit b) {
  std::uint64_t z = (static_cast<std::uint64_t>(a) << 32) | b;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Aig::Aig(std::uint32_t num_pis, StrashMode mode)
    : num_pis_(num_pis), mode_(mode) {
  fanin0_.resize(num_pis_ + 1, 0);
  fanin1_.resize(num_pis_ + 1, 0);
  next_.resize(num_pis_ + 1, kNil);
}

void Aig::reserve(std::uint32_t num_ands) {
  const std::size_t total = num_pis_ + 1 + num_ands;
  fanin0_.reserve(total);
  fanin1_.reserve(total);
  next_.reserve(total);
  std::uint32_t buckets = kInitialBuckets;
  while (buckets < num_ands) {
    buckets <<= 1;
  }
  if (buckets > heads_.size()) {
    heads_.assign(buckets, kNil);
    for (std::uint32_t v = num_pis_ + 1; v < num_nodes(); ++v) {
      const std::uint32_t bucket = bucket_of(fanin0_[v], fanin1_[v]);
      next_[v] = heads_[bucket];
      heads_[bucket] = v;
    }
  }
}

std::uint32_t Aig::bucket_of(Lit a, Lit b) const {
  return static_cast<std::uint32_t>(strash_hash(a, b) &
                                    (heads_.size() - 1));
}

void Aig::grow_table() {
  const std::size_t buckets = heads_.empty() ? kInitialBuckets
                                             : heads_.size() * 2;
  heads_.assign(buckets, kNil);
  for (std::uint32_t v = num_pis_ + 1; v < num_nodes(); ++v) {
    const std::uint32_t bucket = bucket_of(fanin0_[v], fanin1_[v]);
    next_[v] = heads_[bucket];
    heads_[bucket] = v;
  }
}

Lit Aig::fold_two_level(Lit a, Lit b) const {
  // Grandchild rules over AND(a, b), a <= b, trivial rules already done.
  // Every rule folds to an existing literal or a constant — never a new
  // node shape — so two-level construction is a pure subset of one-level.
  constexpr Lit kNoFold = kNil;
  const std::uint32_t va = lit_var(a);
  const std::uint32_t vb = lit_var(b);
  const bool and_a = is_and(va);
  const bool and_b = is_and(vb);
  if (and_a) {
    const Lit x = fanin0_[va];
    const Lit y = fanin1_[va];
    if (!lit_compl(a)) {
      // a = x & y: contradiction (a implies x and y) and containment.
      if (b == lit_not(x) || b == lit_not(y)) {
        return kLitFalse;
      }
      if (b == x || b == y) {
        return a;
      }
    } else if (b == lit_not(x) || b == lit_not(y)) {
      // a = !(x & y), b = !x: b already implies a (subsumption).
      return b;
    }
  }
  if (and_b) {
    const Lit x = fanin0_[vb];
    const Lit y = fanin1_[vb];
    if (!lit_compl(b)) {
      if (a == lit_not(x) || a == lit_not(y)) {
        return kLitFalse;
      }
      if (a == x || a == y) {
        return b;
      }
    } else if (a == lit_not(x) || a == lit_not(y)) {
      return a;
    }
  }
  if (and_a && and_b) {
    const Lit ax = fanin0_[va];
    const Lit ay = fanin1_[va];
    const Lit bx = fanin0_[vb];
    const Lit by = fanin1_[vb];
    const bool ca = lit_compl(a);
    const bool cb = lit_compl(b);
    if (!ca && !cb) {
      // Contradiction across grandchildren: (..x..) & (..!x..) = 0.
      if (ax == lit_not(bx) || ax == lit_not(by) || ay == lit_not(bx) ||
          ay == lit_not(by)) {
        return kLitFalse;
      }
    } else if (!ca && cb) {
      // a = ax & ay, b = !(bx & by): a true forces some b-grandchild
      // false, so a implies b and the AND collapses to a (subsumption).
      if (ax == lit_not(bx) || ax == lit_not(by) || ay == lit_not(bx) ||
          ay == lit_not(by)) {
        return a;
      }
    } else if (ca && !cb) {
      if (bx == lit_not(ax) || bx == lit_not(ay) || by == lit_not(ax) ||
          by == lit_not(ay)) {
        return b;
      }
    } else {
      // Resemblance: !(x & y) & !(x & !y) = !x.
      if (ax == bx && ay == lit_not(by)) {
        return lit_not(ax);
      }
      if (ax == by && ay == lit_not(bx)) {
        return lit_not(ax);
      }
      if (ay == bx && ax == lit_not(by)) {
        return lit_not(ay);
      }
      if (ay == by && ax == lit_not(bx)) {
        return lit_not(ay);
      }
    }
  }
  return kNoFold;
}

Lit Aig::and2(Lit a, Lit b) {
  if (a > b) {
    std::swap(a, b);
  }
  // Trivial cases.
  if (a == kLitFalse) {
    return kLitFalse;
  }
  if (a == kLitTrue) {
    return b;
  }
  if (a == b) {
    return a;
  }
  if (a == lit_not(b)) {
    return kLitFalse;
  }
  if (mode_ == StrashMode::kTwoLevel) {
    const Lit folded = fold_two_level(a, b);
    if (folded != static_cast<Lit>(kNil)) {
      return folded;
    }
  }
  assert(lit_var(a) < num_nodes() && lit_var(b) < num_nodes());
  if (heads_.empty()) {
    heads_.assign(kInitialBuckets, kNil);
  }
  const std::uint32_t bucket = bucket_of(a, b);
  for (std::uint32_t v = heads_[bucket]; v != kNil; v = next_[v]) {
    if (fanin0_[v] == a && fanin1_[v] == b) {
      return make_lit(v, false);
    }
  }
  if (num_ands() + 1 > heads_.size()) {
    grow_table();
  }
  const auto var = num_nodes();
  fanin0_.push_back(a);
  fanin1_.push_back(b);
  const std::uint32_t home = bucket_of(a, b);  // grow_table may have moved it
  next_.push_back(heads_[home]);
  heads_[home] = var;
  return make_lit(var, false);
}

Lit Aig::xor2(Lit a, Lit b) {
  // a ^ b = !(!(a & !b) & !(!a & b))
  return lit_not(and2(lit_not(and2(a, lit_not(b))), lit_not(and2(lit_not(a), b))));
}

Lit Aig::mux(Lit s, Lit t, Lit e) {
  return lit_not(and2(lit_not(and2(s, t)), lit_not(and2(lit_not(s), e))));
}

Lit Aig::maj3(Lit a, Lit b, Lit c) {
  return or2(and2(a, b), or2(and2(a, c), and2(b, c)));
}

std::vector<std::uint32_t> Aig::levels() const {
  std::vector<std::uint32_t> level(num_nodes(), 0);
  for (std::uint32_t v = num_pis_ + 1; v < num_nodes(); ++v) {
    level[v] = 1 + std::max(level[lit_var(fanin0_[v])],
                            level[lit_var(fanin1_[v])]);
  }
  return level;
}

std::uint32_t Aig::num_levels() const {
  const auto level = levels();
  std::uint32_t depth = 0;
  for (Lit out : outputs_) {
    depth = std::max(depth, level[lit_var(out)]);
  }
  return depth;
}

std::vector<std::uint32_t> Aig::fanout_counts() const {
  std::vector<std::uint32_t> refs(num_nodes(), 0);
  for (std::uint32_t v = num_pis_ + 1; v < num_nodes(); ++v) {
    ++refs[lit_var(fanin0_[v])];
    ++refs[lit_var(fanin1_[v])];
  }
  for (Lit out : outputs_) {
    ++refs[lit_var(out)];
  }
  return refs;
}

std::vector<bool> Aig::eval_row(const std::vector<std::uint8_t>& inputs) const {
  if (inputs.size() < num_pis_) {
    throw std::invalid_argument("Aig::eval_row: not enough input values");
  }
  std::vector<std::uint8_t> value(num_nodes(), 0);
  for (std::uint32_t i = 0; i < num_pis_; ++i) {
    value[i + 1] = inputs[i] ? 1 : 0;
  }
  for (std::uint32_t v = num_pis_ + 1; v < num_nodes(); ++v) {
    const std::uint8_t a = value[lit_var(fanin0_[v])] ^ lit_compl(fanin0_[v]);
    const std::uint8_t b = value[lit_var(fanin1_[v])] ^ lit_compl(fanin1_[v]);
    value[v] = a & b;
  }
  std::vector<bool> out;
  out.reserve(outputs_.size());
  for (Lit l : outputs_) {
    out.push_back((value[lit_var(l)] ^ lit_compl(l)) != 0);
  }
  return out;
}

std::vector<core::BitVec> Aig::simulate_nodes(
    const std::vector<const core::BitVec*>& pi_values) const {
  SimEngine engine(*this);
  engine.run(pi_values);
  return engine.node_values();
}

std::vector<core::BitVec> Aig::simulate(
    const std::vector<const core::BitVec*>& pi_values) const {
  SimEngine engine(*this);
  engine.run(pi_values);
  return engine.outputs();
}

std::uint64_t Aig::content_hash() const {
  // FNV-1a over the structure. Node ids are assigned in topological order,
  // so structurally identical circuits built the same way hash equal.
  std::uint64_t h = core::fnv1a(&num_pis_, sizeof(num_pis_));
  const std::size_t num_nodes = fanin0_.size();
  h = core::fnv1a(&num_nodes, sizeof(num_nodes), h);
  for (std::size_t v = num_pis_ + 1; v < fanin0_.size(); ++v) {
    const Lit fanins[2] = {fanin0_[v], fanin1_[v]};
    h = core::fnv1a(fanins, sizeof(fanins), h);
  }
  if (!outputs_.empty()) {
    h = core::fnv1a(outputs_.data(), outputs_.size() * sizeof(Lit), h);
  }
  return h;
}

Aig Aig::cleanup() const {
  std::vector<std::uint8_t> used(num_nodes(), 0);
  // Mark cones of all outputs (reverse topological sweep).
  for (Lit out : outputs_) {
    used[lit_var(out)] = 1;
  }
  for (std::uint32_t v = num_nodes() - 1; v > num_pis_; --v) {
    if (used[v]) {
      used[lit_var(fanin0_[v])] = 1;
      used[lit_var(fanin1_[v])] = 1;
    }
  }
  Aig result(num_pis_, mode_);
  std::vector<Lit> map(num_nodes(), kLitFalse);
  for (std::uint32_t i = 0; i < num_pis_; ++i) {
    map[i + 1] = result.pi(i);
  }
  for (std::uint32_t v = num_pis_ + 1; v < num_nodes(); ++v) {
    if (!used[v]) {
      continue;
    }
    const Lit a = lit_notc(map[lit_var(fanin0_[v])], lit_compl(fanin0_[v]));
    const Lit b = lit_notc(map[lit_var(fanin1_[v])], lit_compl(fanin1_[v]));
    map[v] = result.and2(a, b);
  }
  for (Lit out : outputs_) {
    result.add_output(lit_notc(map[lit_var(out)], lit_compl(out)));
  }
  return result;
}

std::uint32_t Aig::cone_size() const {
  std::vector<std::uint8_t> used(num_nodes(), 0);
  for (Lit out : outputs_) {
    used[lit_var(out)] = 1;
  }
  std::uint32_t count = 0;
  for (std::uint32_t v = num_nodes() - 1; v > num_pis_; --v) {
    if (used[v]) {
      ++count;
      used[lit_var(fanin0_[v])] = 1;
      used[lit_var(fanin1_[v])] = 1;
    }
  }
  return count;
}

Lit append_aig(Aig& dst, const Aig& src, std::size_t output_index) {
  if (src.num_pis() > dst.num_pis()) {
    throw std::invalid_argument("append_aig: source has more PIs");
  }
  std::vector<Lit> map(src.num_nodes(), kLitFalse);
  for (std::uint32_t i = 0; i < src.num_pis(); ++i) {
    map[i + 1] = dst.pi(i);
  }
  for (std::uint32_t v = src.num_pis() + 1; v < src.num_nodes(); ++v) {
    const Node n = src.node(v);
    map[v] = dst.and2(lit_notc(map[lit_var(n.fanin0)], lit_compl(n.fanin0)),
                      lit_notc(map[lit_var(n.fanin1)], lit_compl(n.fanin1)));
  }
  const Lit out = src.output(output_index);
  return lit_notc(map[lit_var(out)], lit_compl(out));
}

double agreement(const Aig& aig,
                 const std::vector<const core::BitVec*>& pi_values,
                 const core::BitVec& labels) {
  if (aig.num_outputs() == 0 || labels.size() == 0) {
    return 0.0;
  }
  SimEngine engine(aig);
  engine.run(pi_values);
  return static_cast<double>(engine.count_equal(aig.output(0), labels)) /
         static_cast<double>(labels.size());
}

}  // namespace lsml::aig
