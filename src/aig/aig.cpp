#include "aig/aig.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace lsml::aig {

Aig::Aig(std::uint32_t num_pis) : num_pis_(num_pis) {
  nodes_.resize(num_pis_ + 1);
}

Lit Aig::and2(Lit a, Lit b) {
  if (a > b) {
    std::swap(a, b);
  }
  // Trivial cases.
  if (a == kLitFalse) {
    return kLitFalse;
  }
  if (a == kLitTrue) {
    return b;
  }
  if (a == b) {
    return a;
  }
  if (a == lit_not(b)) {
    return kLitFalse;
  }
  const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
  if (auto it = strash_.find(key); it != strash_.end()) {
    return make_lit(it->second, false);
  }
  assert(lit_var(a) < nodes_.size() && lit_var(b) < nodes_.size());
  const auto var = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{a, b});
  strash_.emplace(key, var);
  return make_lit(var, false);
}

Lit Aig::xor2(Lit a, Lit b) {
  // a ^ b = !(!(a & !b) & !(!a & b))
  return lit_not(and2(lit_not(and2(a, lit_not(b))), lit_not(and2(lit_not(a), b))));
}

Lit Aig::mux(Lit s, Lit t, Lit e) {
  return lit_not(and2(lit_not(and2(s, t)), lit_not(and2(lit_not(s), e))));
}

Lit Aig::maj3(Lit a, Lit b, Lit c) {
  return or2(and2(a, b), or2(and2(a, c), and2(b, c)));
}

std::vector<std::uint32_t> Aig::levels() const {
  std::vector<std::uint32_t> level(nodes_.size(), 0);
  for (std::uint32_t v = num_pis_ + 1; v < nodes_.size(); ++v) {
    level[v] = 1 + std::max(level[lit_var(nodes_[v].fanin0)],
                            level[lit_var(nodes_[v].fanin1)]);
  }
  return level;
}

std::uint32_t Aig::num_levels() const {
  const auto level = levels();
  std::uint32_t depth = 0;
  for (Lit out : outputs_) {
    depth = std::max(depth, level[lit_var(out)]);
  }
  return depth;
}

std::vector<std::uint32_t> Aig::fanout_counts() const {
  std::vector<std::uint32_t> refs(nodes_.size(), 0);
  for (std::uint32_t v = num_pis_ + 1; v < nodes_.size(); ++v) {
    ++refs[lit_var(nodes_[v].fanin0)];
    ++refs[lit_var(nodes_[v].fanin1)];
  }
  for (Lit out : outputs_) {
    ++refs[lit_var(out)];
  }
  return refs;
}

std::vector<bool> Aig::eval_row(const std::vector<std::uint8_t>& inputs) const {
  if (inputs.size() < num_pis_) {
    throw std::invalid_argument("Aig::eval_row: not enough input values");
  }
  std::vector<std::uint8_t> value(nodes_.size(), 0);
  for (std::uint32_t i = 0; i < num_pis_; ++i) {
    value[i + 1] = inputs[i] ? 1 : 0;
  }
  for (std::uint32_t v = num_pis_ + 1; v < nodes_.size(); ++v) {
    const Node& n = nodes_[v];
    const std::uint8_t a = value[lit_var(n.fanin0)] ^ lit_compl(n.fanin0);
    const std::uint8_t b = value[lit_var(n.fanin1)] ^ lit_compl(n.fanin1);
    value[v] = a & b;
  }
  std::vector<bool> out;
  out.reserve(outputs_.size());
  for (Lit l : outputs_) {
    out.push_back((value[lit_var(l)] ^ lit_compl(l)) != 0);
  }
  return out;
}

std::vector<core::BitVec> Aig::simulate_nodes(
    const std::vector<const core::BitVec*>& pi_values) const {
  if (pi_values.size() < num_pis_) {
    throw std::invalid_argument("Aig::simulate: not enough PI value vectors");
  }
  const std::size_t rows = num_pis_ == 0 ? 0 : pi_values[0]->size();
  std::vector<core::BitVec> sim(nodes_.size(), core::BitVec(rows));
  for (std::uint32_t i = 0; i < num_pis_; ++i) {
    sim[i + 1] = *pi_values[i];
  }
  const std::size_t nw = sim[0].num_words();
  for (std::uint32_t v = num_pis_ + 1; v < nodes_.size(); ++v) {
    const Node& n = nodes_[v];
    const std::uint64_t* a = sim[lit_var(n.fanin0)].words();
    const std::uint64_t* b = sim[lit_var(n.fanin1)].words();
    std::uint64_t* dst = sim[v].words();
    const std::uint64_t ca = lit_compl(n.fanin0) ? ~0ULL : 0ULL;
    const std::uint64_t cb = lit_compl(n.fanin1) ? ~0ULL : 0ULL;
    for (std::size_t w = 0; w < nw; ++w) {
      dst[w] = (a[w] ^ ca) & (b[w] ^ cb);
    }
    // Tail bits can become garbage through complemented edges; the extract
    // step below re-masks, so only final outputs need the invariant.
  }
  return sim;
}

std::vector<core::BitVec> Aig::simulate(
    const std::vector<const core::BitVec*>& pi_values) const {
  auto sim = simulate_nodes(pi_values);
  const std::size_t rows = num_pis_ == 0 ? 0 : pi_values[0]->size();
  std::vector<core::BitVec> out;
  out.reserve(outputs_.size());
  for (Lit l : outputs_) {
    core::BitVec v(rows);
    const core::BitVec& src = sim[lit_var(l)];
    for (std::size_t i = 0; i < v.num_words(); ++i) {
      v.words()[i] = src.word(i);
    }
    if (lit_compl(l)) {
      v.flip();
    } else {
      // Re-establish the tail-zero invariant (see simulate_nodes).
      v.flip();
      v.flip();
    }
    out.push_back(std::move(v));
  }
  return out;
}

std::uint64_t Aig::content_hash() const {
  // FNV-1a over the structure. Node ids are assigned in topological order,
  // so structurally identical circuits built the same way hash equal.
  std::uint64_t h = core::fnv1a(&num_pis_, sizeof(num_pis_));
  const std::size_t num_nodes = nodes_.size();
  h = core::fnv1a(&num_nodes, sizeof(num_nodes), h);
  for (std::size_t v = num_pis_ + 1; v < nodes_.size(); ++v) {
    const Lit fanins[2] = {nodes_[v].fanin0, nodes_[v].fanin1};
    h = core::fnv1a(fanins, sizeof(fanins), h);
  }
  if (!outputs_.empty()) {
    h = core::fnv1a(outputs_.data(), outputs_.size() * sizeof(Lit), h);
  }
  return h;
}

Aig Aig::cleanup() const {
  std::vector<std::uint8_t> used(nodes_.size(), 0);
  // Mark cones of all outputs (reverse topological sweep).
  for (Lit out : outputs_) {
    used[lit_var(out)] = 1;
  }
  for (std::uint32_t v = static_cast<std::uint32_t>(nodes_.size()) - 1;
       v > num_pis_; --v) {
    if (used[v]) {
      used[lit_var(nodes_[v].fanin0)] = 1;
      used[lit_var(nodes_[v].fanin1)] = 1;
    }
  }
  Aig result(num_pis_);
  std::vector<Lit> map(nodes_.size(), kLitFalse);
  for (std::uint32_t i = 0; i < num_pis_; ++i) {
    map[i + 1] = result.pi(i);
  }
  for (std::uint32_t v = num_pis_ + 1; v < nodes_.size(); ++v) {
    if (!used[v]) {
      continue;
    }
    const Node& n = nodes_[v];
    const Lit a = lit_notc(map[lit_var(n.fanin0)], lit_compl(n.fanin0));
    const Lit b = lit_notc(map[lit_var(n.fanin1)], lit_compl(n.fanin1));
    map[v] = result.and2(a, b);
  }
  for (Lit out : outputs_) {
    result.add_output(lit_notc(map[lit_var(out)], lit_compl(out)));
  }
  return result;
}

std::uint32_t Aig::cone_size() const {
  std::vector<std::uint8_t> used(nodes_.size(), 0);
  for (Lit out : outputs_) {
    used[lit_var(out)] = 1;
  }
  std::uint32_t count = 0;
  for (std::uint32_t v = static_cast<std::uint32_t>(nodes_.size()) - 1;
       v > num_pis_; --v) {
    if (used[v]) {
      ++count;
      used[lit_var(nodes_[v].fanin0)] = 1;
      used[lit_var(nodes_[v].fanin1)] = 1;
    }
  }
  return count;
}

Lit append_aig(Aig& dst, const Aig& src, std::size_t output_index) {
  if (src.num_pis() > dst.num_pis()) {
    throw std::invalid_argument("append_aig: source has more PIs");
  }
  std::vector<Lit> map(src.num_nodes(), kLitFalse);
  for (std::uint32_t i = 0; i < src.num_pis(); ++i) {
    map[i + 1] = dst.pi(i);
  }
  for (std::uint32_t v = src.num_pis() + 1; v < src.num_nodes(); ++v) {
    const Node& n = src.node(v);
    map[v] = dst.and2(lit_notc(map[lit_var(n.fanin0)], lit_compl(n.fanin0)),
                      lit_notc(map[lit_var(n.fanin1)], lit_compl(n.fanin1)));
  }
  const Lit out = src.output(output_index);
  return lit_notc(map[lit_var(out)], lit_compl(out));
}

double agreement(const Aig& aig,
                 const std::vector<const core::BitVec*>& pi_values,
                 const core::BitVec& labels) {
  const auto out = aig.simulate(pi_values);
  if (out.empty() || labels.size() == 0) {
    return 0.0;
  }
  return static_cast<double>(out[0].count_equal(labels)) /
         static_cast<double>(labels.size());
}

}  // namespace lsml::aig
