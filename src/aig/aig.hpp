#pragma once
// And-Inverter Graph (AIG) package.
//
// The contest's target representation: a DAG of 2-input AND gates with
// optionally complemented edges. This implementation provides structural
// hashing, constant/trivial-case simplification, 64-way parallel bit
// simulation, level/size queries, and cone-based compaction. Node ids are
// assigned in topological order (fanins always precede a gate), which every
// traversal in the library relies on.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/bits.hpp"

namespace lsml::aig {

/// Edge literal: 2*var + complement. Literal 0 is constant false, 1 true.
using Lit = std::uint32_t;

inline constexpr Lit kLitFalse = 0;
inline constexpr Lit kLitTrue = 1;

[[nodiscard]] inline constexpr Lit make_lit(std::uint32_t var, bool compl_) {
  return (var << 1) | static_cast<std::uint32_t>(compl_);
}
[[nodiscard]] inline constexpr std::uint32_t lit_var(Lit l) { return l >> 1; }
[[nodiscard]] inline constexpr bool lit_compl(Lit l) { return l & 1u; }
[[nodiscard]] inline constexpr Lit lit_not(Lit l) { return l ^ 1u; }
[[nodiscard]] inline constexpr Lit lit_notc(Lit l, bool c) {
  return l ^ static_cast<Lit>(c);
}

/// A single AND node; primary inputs and the constant node have no fanins.
struct Node {
  Lit fanin0 = 0;
  Lit fanin1 = 0;
};

class Aig {
 public:
  /// Creates an AIG with `num_pis` primary inputs (vars 1..num_pis).
  explicit Aig(std::uint32_t num_pis = 0);

  [[nodiscard]] std::uint32_t num_pis() const { return num_pis_; }
  /// Total node count including constant and PIs.
  [[nodiscard]] std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  /// Number of AND gates (the contest's size metric).
  [[nodiscard]] std::uint32_t num_ands() const {
    return num_nodes() - num_pis_ - 1;
  }
  [[nodiscard]] bool is_pi(std::uint32_t var) const {
    return var >= 1 && var <= num_pis_;
  }
  [[nodiscard]] bool is_and(std::uint32_t var) const {
    return var > num_pis_;
  }
  [[nodiscard]] const Node& node(std::uint32_t var) const {
    return nodes_[var];
  }

  /// Literal of the i-th primary input, i in [0, num_pis).
  [[nodiscard]] Lit pi(std::uint32_t i) const { return make_lit(i + 1, false); }

  /// Structurally hashed AND with constant/idempotence simplification.
  Lit and2(Lit a, Lit b);
  Lit or2(Lit a, Lit b) { return lit_not(and2(lit_not(a), lit_not(b))); }
  Lit xor2(Lit a, Lit b);
  Lit xnor2(Lit a, Lit b) { return lit_not(xor2(a, b)); }
  /// if s then t else e.
  Lit mux(Lit s, Lit t, Lit e);
  Lit maj3(Lit a, Lit b, Lit c);

  void add_output(Lit l) { outputs_.push_back(l); }
  void set_output(std::size_t i, Lit l) { outputs_[i] = l; }
  [[nodiscard]] std::size_t num_outputs() const { return outputs_.size(); }
  [[nodiscard]] Lit output(std::size_t i = 0) const { return outputs_[i]; }
  [[nodiscard]] const std::vector<Lit>& outputs() const { return outputs_; }

  /// Structural level of every node (PIs at level 0).
  [[nodiscard]] std::vector<std::uint32_t> levels() const;
  /// Maximum level over all outputs (the contest's depth metric).
  [[nodiscard]] std::uint32_t num_levels() const;

  /// Fanout count of every node, counting output uses.
  [[nodiscard]] std::vector<std::uint32_t> fanout_counts() const;

  /// Evaluates all outputs for one input row (bit i = value of PI i).
  [[nodiscard]] std::vector<bool> eval_row(
      const std::vector<std::uint8_t>& inputs) const;

  /// 64-way parallel simulation. `pi_values[i]` holds the values of PI i
  /// across all simulated rows; returns one BitVec per output.
  [[nodiscard]] std::vector<core::BitVec> simulate(
      const std::vector<const core::BitVec*>& pi_values) const;

  /// Per-node simulation values (indexed by var), for approximation passes.
  [[nodiscard]] std::vector<core::BitVec> simulate_nodes(
      const std::vector<const core::BitVec*>& pi_values) const;

  /// Structural content digest (PI count, node fanins, outputs), in the
  /// style of data::Dataset::content_hash: equal structures hash equal
  /// across processes. Keys the synth::PassManager memo and participates
  /// in on-disk cache keys, so changing it requires bumping
  /// suite::kResultCacheSchemaVersion.
  [[nodiscard]] std::uint64_t content_hash() const;

  /// Returns a compacted copy containing only the cone of the outputs.
  /// The PI count is preserved (PIs are never removed).
  [[nodiscard]] Aig cleanup() const;

  /// Number of AND nodes in the cone of the outputs (dangling excluded).
  [[nodiscard]] std::uint32_t cone_size() const;

 private:
  std::uint32_t num_pis_ = 0;
  std::vector<Node> nodes_;  // [0]=const, [1..num_pis]=PIs, rest ANDs
  std::vector<Lit> outputs_;
  std::unordered_map<std::uint64_t, std::uint32_t> strash_;
};

/// Fraction of rows on which the single-output AIG agrees with `labels`.
double agreement(const Aig& aig,
                 const std::vector<const core::BitVec*>& pi_values,
                 const core::BitVec& labels);

/// Copies `src` (single output) into `dst`, mapping src PI i to dst PI i,
/// and returns the literal of src's output inside dst. Used to combine
/// separately-trained circuits into one ensemble AIG.
Lit append_aig(Aig& dst, const Aig& src, std::size_t output_index = 0);

}  // namespace lsml::aig
