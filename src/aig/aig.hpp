#pragma once
// And-Inverter Graph (AIG) package.
//
// The contest's target representation: a DAG of 2-input AND gates with
// optionally complemented edges. This implementation provides structural
// hashing, constant/trivial-case simplification, 64-way parallel bit
// simulation, level/size queries, and cone-based compaction. Node ids are
// assigned in topological order (fanins always precede a gate), which every
// traversal in the library relies on.
//
// Storage is structure-of-arrays: one flat fanin array per edge slot plus
// an intrusive hash-chained unique table (bucket heads + per-node next
// indices, Boolector-style), so construction never touches a node-handle
// map and a topological sweep walks two contiguous arrays. Structural
// hashing has two strengths (StrashMode): the default one-level rules are
// byte-compatible with the historical map-based strash — same node ids,
// same content_hash, same write_aag output for any build sequence — while
// the opt-in two-level rules additionally inspect grandchildren
// (contradiction / subsumption / idempotence / resemblance) so redundant
// AND nodes that would otherwise survive until `fraig` are never built.

#include <cstdint>
#include <string>
#include <vector>

#include "core/bits.hpp"

namespace lsml::aig {

/// Edge literal: 2*var + complement. Literal 0 is constant false, 1 true.
using Lit = std::uint32_t;

inline constexpr Lit kLitFalse = 0;
inline constexpr Lit kLitTrue = 1;

[[nodiscard]] inline constexpr Lit make_lit(std::uint32_t var, bool compl_) {
  return (var << 1) | static_cast<std::uint32_t>(compl_);
}
[[nodiscard]] inline constexpr std::uint32_t lit_var(Lit l) { return l >> 1; }
[[nodiscard]] inline constexpr bool lit_compl(Lit l) { return l & 1u; }
[[nodiscard]] inline constexpr Lit lit_not(Lit l) { return l ^ 1u; }
[[nodiscard]] inline constexpr Lit lit_notc(Lit l, bool c) {
  return l ^ static_cast<Lit>(c);
}

/// A single AND node; primary inputs and the constant node have no fanins.
/// Returned by value from Aig::node() (the graph stores fanins SoA).
struct Node {
  Lit fanin0 = 0;
  Lit fanin1 = 0;
};

class Aig {
 public:
  /// How much structure and2() folds before allocating a node.
  enum class StrashMode : std::uint8_t {
    /// Constant/idempotence/complement rules on the two operands only.
    /// Byte-compatible with every AIG this library ever built: node ids,
    /// content_hash and write_aag output are pinned by golden tests.
    kOneLevel,
    /// kOneLevel plus grandchild rules (contradiction, subsumption,
    /// idempotence, resemblance). Never allocates a node a one-level
    /// build would have skipped; may fold to an existing literal or a
    /// constant instead of allocating. Deterministic, but produces
    /// different (smaller) structures than kOneLevel, so only consumers
    /// without a pinned-artifact contract opt in (e.g. sat::fraig).
    kTwoLevel,
  };

  /// Creates an AIG with `num_pis` primary inputs (vars 1..num_pis).
  explicit Aig(std::uint32_t num_pis = 0,
               StrashMode mode = StrashMode::kOneLevel);

  [[nodiscard]] StrashMode strash_mode() const { return mode_; }

  [[nodiscard]] std::uint32_t num_pis() const { return num_pis_; }
  /// Total node count including constant and PIs.
  [[nodiscard]] std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(fanin0_.size());
  }
  /// Number of AND gates (the contest's size metric).
  [[nodiscard]] std::uint32_t num_ands() const {
    return num_nodes() - num_pis_ - 1;
  }
  [[nodiscard]] bool is_pi(std::uint32_t var) const {
    return var >= 1 && var <= num_pis_;
  }
  [[nodiscard]] bool is_and(std::uint32_t var) const {
    return var > num_pis_;
  }
  [[nodiscard]] Node node(std::uint32_t var) const {
    return Node{fanin0_[var], fanin1_[var]};
  }
  [[nodiscard]] Lit fanin0(std::uint32_t var) const { return fanin0_[var]; }
  [[nodiscard]] Lit fanin1(std::uint32_t var) const { return fanin1_[var]; }

  /// Pre-sizes node storage and the unique table for `num_ands` gates.
  void reserve(std::uint32_t num_ands);

  /// Literal of the i-th primary input, i in [0, num_pis).
  [[nodiscard]] Lit pi(std::uint32_t i) const { return make_lit(i + 1, false); }

  /// Structurally hashed AND with constant/idempotence simplification
  /// (plus grandchild rules under StrashMode::kTwoLevel).
  Lit and2(Lit a, Lit b);
  Lit or2(Lit a, Lit b) { return lit_not(and2(lit_not(a), lit_not(b))); }
  Lit xor2(Lit a, Lit b);
  Lit xnor2(Lit a, Lit b) { return lit_not(xor2(a, b)); }
  /// if s then t else e.
  Lit mux(Lit s, Lit t, Lit e);
  Lit maj3(Lit a, Lit b, Lit c);

  void add_output(Lit l) { outputs_.push_back(l); }
  void set_output(std::size_t i, Lit l) { outputs_[i] = l; }
  [[nodiscard]] std::size_t num_outputs() const { return outputs_.size(); }
  [[nodiscard]] Lit output(std::size_t i = 0) const { return outputs_[i]; }
  [[nodiscard]] const std::vector<Lit>& outputs() const { return outputs_; }

  /// Structural level of every node (PIs at level 0).
  [[nodiscard]] std::vector<std::uint32_t> levels() const;
  /// Maximum level over all outputs (the contest's depth metric).
  [[nodiscard]] std::uint32_t num_levels() const;

  /// Fanout count of every node, counting output uses.
  [[nodiscard]] std::vector<std::uint32_t> fanout_counts() const;

  /// Evaluates all outputs for one input row (bit i = value of PI i).
  [[nodiscard]] std::vector<bool> eval_row(
      const std::vector<std::uint8_t>& inputs) const;

  /// 64-way parallel simulation. `pi_values[i]` holds the values of PI i
  /// across all simulated rows; returns one BitVec per output. Thin
  /// compatibility wrapper over aig::SimEngine — callers that simulate
  /// the same circuit repeatedly should hold a SimEngine instead so the
  /// word arena is reused across sweeps.
  [[nodiscard]] std::vector<core::BitVec> simulate(
      const std::vector<const core::BitVec*>& pi_values) const;

  /// Per-node simulation values (indexed by var), for approximation
  /// passes. Same SimEngine wrapper; every returned row honors the
  /// BitVec tail-zero invariant (historically tails held garbage).
  [[nodiscard]] std::vector<core::BitVec> simulate_nodes(
      const std::vector<const core::BitVec*>& pi_values) const;

  /// Structural content digest (PI count, node fanins, outputs), in the
  /// style of data::Dataset::content_hash: equal structures hash equal
  /// across processes. Keys the synth::PassManager memo and participates
  /// in on-disk cache keys, so changing it requires bumping
  /// suite::kResultCacheSchemaVersion.
  [[nodiscard]] std::uint64_t content_hash() const;

  /// Returns a compacted copy containing only the cone of the outputs.
  /// The PI count is preserved (PIs are never removed), and so is the
  /// strash mode.
  [[nodiscard]] Aig cleanup() const;

  /// Number of AND nodes in the cone of the outputs (dangling excluded).
  [[nodiscard]] std::uint32_t cone_size() const;

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  /// Bucket index of the (a, b) fanin pair in the current table.
  [[nodiscard]] std::uint32_t bucket_of(Lit a, Lit b) const;
  /// Grandchild folding; returns the folded literal or kNil-as-lit
  /// (kNoFold) when no two-level rule applies.
  [[nodiscard]] Lit fold_two_level(Lit a, Lit b) const;
  /// Doubles the bucket array and relinks every AND node.
  void grow_table();

  std::uint32_t num_pis_ = 0;
  StrashMode mode_ = StrashMode::kOneLevel;
  // Structure-of-arrays node storage: [0]=const, [1..num_pis]=PIs, rest
  // ANDs in topological order. PIs/const carry fanins 0.
  std::vector<Lit> fanin0_;
  std::vector<Lit> fanin1_;
  std::vector<Lit> outputs_;
  // Intrusive unique table over the AND nodes: heads_ holds chain heads
  // per bucket (power-of-two count), next_[var] threads the chain through
  // the arena. Only point lookups — chain order never leaks into results.
  std::vector<std::uint32_t> heads_;
  std::vector<std::uint32_t> next_;
};

/// Fraction of rows on which the single-output AIG agrees with `labels`.
double agreement(const Aig& aig,
                 const std::vector<const core::BitVec*>& pi_values,
                 const core::BitVec& labels);

/// Copies `src` (single output) into `dst`, mapping src PI i to dst PI i,
/// and returns the literal of src's output inside dst. Used to combine
/// separately-trained circuits into one ensemble AIG.
Lit append_aig(Aig& dst, const Aig& src, std::size_t output_index = 0);

}  // namespace lsml::aig
