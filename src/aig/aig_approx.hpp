#pragma once
// Team 1's simulation-guided approximation.
//
// When a synthesized AIG exceeds the contest's 5000-node budget, the AIG is
// simulated with random input patterns and the internal node that most
// frequently evaluates to a constant is replaced by that constant (taking
// negation into account). Nodes near the outputs are protected by a depth
// threshold. Repeats until the budget is met. The paper reports ~5%
// accuracy loss when removing 3000-5000 nodes this way (Fig. 7).

#include <cstdint>

#include "aig/aig.hpp"
#include "core/rng.hpp"

namespace lsml::aig {

struct ApproxOptions {
  std::uint32_t node_budget = 5000;
  std::size_t num_patterns = 2048;   ///< random simulation vectors
  std::uint32_t protect_depth = 3;   ///< exclude nodes this close to outputs
};

/// Shrinks `in` below the node budget by constant replacement.
/// Returns the (cleaned-up) approximated AIG; if `in` is already within
/// budget, returns a cleaned-up copy.
Aig approximate_to_budget(const Aig& in, const ApproxOptions& options,
                          core::Rng& rng);

/// Replaces one node (by var id) with a constant and cleans up.
Aig replace_with_constant(const Aig& in, std::uint32_t var, bool value);

}  // namespace lsml::aig
