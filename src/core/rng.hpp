#pragma once
// Deterministic, fast pseudo-random number generation (xoshiro256**).
//
// All stochastic components of the library (sampling, forests, CGP, ...)
// take an explicit Rng so experiments are reproducible from a single seed.

#include <cstdint>

namespace lsml::core {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Bernoulli draw with probability p of returning true.
  bool flip(double p) { return uniform() < p; }

  /// Standard normal via Box-Muller (cheap enough for MLP init).
  double gaussian();

  /// Derive an independent stream (for per-benchmark / per-tree seeding).
  Rng fork() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

  /// Derive an independent stream keyed by (a, b) WITHOUT advancing this
  /// generator. Because the child depends only on the parent's current
  /// state and the key, split(team, benchmark) yields the same stream no
  /// matter how many threads run or in what order tasks complete — the
  /// basis for bit-identical serial/parallel contest runs.
  [[nodiscard]] Rng split(std::uint64_t a, std::uint64_t b) const {
    std::uint64_t h = state_[0] ^ rotl(state_[2], 29);
    h = mix64(h + 0x9e3779b97f4a7c15ULL + a);
    h = mix64(h ^ rotl(b, 17) ^ state_[1]);
    return Rng(h ^ state_[3]);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  /// SplitMix64 finalizer: full-avalanche 64-bit mixing.
  static constexpr std::uint64_t mix64(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  std::uint64_t state_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;

 public:
  // gaussian() needs the members above; defined out of line in bits.cpp.
};

}  // namespace lsml::core
