// AVX2 backend. This TU — and only this TU — is compiled with -mavx2
// (see the per-source COMPILE_OPTIONS in CMakeLists.txt); when the
// compiler or target cannot do that, __AVX2__ is unset and the backend
// reports itself absent via nullptr.

#include <bit>
#include <cstddef>
#include <cstdint>

#include "simd.hpp"
#include "simd_internal.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace lsml::core::simd {

namespace {

#include "simd_kernels.inc"

inline __m256i and2_vec(__m256i a, __m256i b, __m256i ca, __m256i cb) {
  return _mm256_and_si256(_mm256_xor_si256(a, ca), _mm256_xor_si256(b, cb));
}

inline __m256i load256(const std::uint64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void store256(std::uint64_t* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

void and2_avx2(std::uint64_t* dst, const std::uint64_t* a,
               const std::uint64_t* b, std::uint64_t ca, std::uint64_t cb,
               std::size_t n) {
  const __m256i vca = _mm256_set1_epi64x(static_cast<long long>(ca));
  const __m256i vcb = _mm256_set1_epi64x(static_cast<long long>(cb));
  std::size_t w = 0;
  for (; w + 8 <= n; w += 8) {
    store256(dst + w, and2_vec(load256(a + w), load256(b + w), vca, vcb));
    store256(dst + w + 4,
             and2_vec(load256(a + w + 4), load256(b + w + 4), vca, vcb));
  }
  for (; w + 4 <= n; w += 4)
    store256(dst + w, and2_vec(load256(a + w), load256(b + w), vca, vcb));
  for (; w < n; ++w) dst[w] = (a[w] ^ ca) & (b[w] ^ cb);
}

void sweep_avx2(std::uint64_t* base, std::size_t wpr, const SweepGate* gates,
                std::size_t count, std::size_t w0, std::size_t w1,
                std::uint64_t tail_mask) {
  const std::size_t n = w1 - w0;
  if (n < 4) {
    // Narrow rows/blocks (wpr <= 3, or a thread's column slice): the
    // scalar body, still in this TU so it keeps the -mavx2 codegen.
    sweep_generic(base, wpr, gates, count, w0, w1, tail_mask);
    return;
  }
  const bool masks_tail = w1 == wpr;
  for (std::size_t i = 0; i < count; ++i) {
    const SweepGate g = gates[i];
    const std::uint64_t* a =
        base + static_cast<std::size_t>(g.a >> 1) * wpr + w0;
    const std::uint64_t* b =
        base + static_cast<std::size_t>(g.b >> 1) * wpr + w0;
    std::uint64_t* dst = base + static_cast<std::size_t>(g.dst) * wpr + w0;
    const __m256i vca =
        _mm256_set1_epi64x(-static_cast<long long>(g.a & 1u));
    const __m256i vcb =
        _mm256_set1_epi64x(-static_cast<long long>(g.b & 1u));
    std::size_t w = 0;
    for (; w + 8 <= n; w += 8) {
      store256(dst + w, and2_vec(load256(a + w), load256(b + w), vca, vcb));
      store256(dst + w + 4,
               and2_vec(load256(a + w + 4), load256(b + w + 4), vca, vcb));
    }
    for (; w + 4 <= n; w += 4)
      store256(dst + w, and2_vec(load256(a + w), load256(b + w), vca, vcb));
    if (w < n) {
      // Ragged remainder: one overlapped vector ending exactly at n.
      // Rewrites up to three already-computed words with identical values;
      // safe because a gate's fanin rows are always distinct from dst.
      w = n - 4;
      store256(dst + w, and2_vec(load256(a + w), load256(b + w), vca, vcb));
    }
    if (masks_tail) dst[n - 1] &= tail_mask;
  }
}

// Reductions use the generic bodies: compiled under -mavx2 they get
// hardware POPCNT (the baseline-arch build bit-twiddles std::popcount),
// which is the entire win — the loops are load-bound past that.
const Ops kAvx2 = {Backend::kAvx2,
                   "avx2",
                   &and2_avx2,
                   &sweep_avx2,
                   &popcount_generic,
                   &popcount_xor_generic,
                   &popcount_and_generic,
                   &popcount_andnot_generic};

}  // namespace

const Ops* avx2_ops() { return &kAvx2; }

}  // namespace lsml::core::simd

#else  // !defined(__AVX2__)

namespace lsml::core::simd {
const Ops* avx2_ops() { return nullptr; }
}  // namespace lsml::core::simd

#endif
