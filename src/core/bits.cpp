#include "core/bits.hpp"

#include <bit>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "core/simd.hpp"

namespace lsml::core {

double Rng::gaussian() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = 2.0 * uniform() - 1.0;
    v = 2.0 * uniform() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  have_spare_ = true;
  return u * factor;
}

BitVec::BitVec(std::size_t n, bool value) : size_(n), words_((n + 63) / 64) {
  if (value) {
    fill(true);
  }
}

std::size_t BitVec::count() const {
  return simd::ops().popcount(words_.data(), words_.size());
}

std::size_t BitVec::count_equal(const BitVec& other) const {
  assert(size_ == other.size_);
  return size_ -
         simd::ops().popcount_xor(words_.data(), other.words_.data(),
                                  words_.size());
}

std::size_t BitVec::count_and(const BitVec& other) const {
  assert(size_ == other.size_);
  return simd::ops().popcount_and(words_.data(), other.words_.data(),
                                  words_.size());
}

std::size_t BitVec::count_andnot(const BitVec& other) const {
  assert(size_ == other.size_);
  return simd::ops().popcount_andnot(words_.data(), other.words_.data(),
                                     words_.size());
}

std::size_t BitVec::count_and2(const BitVec& a, const BitVec& b) const {
  assert(size_ == a.size_ && size_ == b.size_);
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total += static_cast<std::size_t>(
        std::popcount(words_[i] & a.words_[i] & b.words_[i]));
  }
  return total;
}

std::size_t BitVec::count_and_andnot(const BitVec& a, const BitVec& b) const {
  assert(size_ == a.size_ && size_ == b.size_);
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total += static_cast<std::size_t>(
        std::popcount(words_[i] & a.words_[i] & ~b.words_[i]));
  }
  return total;
}

BitVec& BitVec::operator&=(const BitVec& o) {
  assert(size_ == o.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= o.words_[i];
  }
  return *this;
}

BitVec& BitVec::operator|=(const BitVec& o) {
  assert(size_ == o.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] |= o.words_[i];
  }
  return *this;
}

BitVec& BitVec::operator^=(const BitVec& o) {
  assert(size_ == o.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] ^= o.words_[i];
  }
  return *this;
}

void BitVec::flip() {
  for (auto& w : words_) {
    w = ~w;
  }
  mask_tail();
}

BitVec BitVec::operator&(const BitVec& o) const {
  BitVec r = *this;
  r &= o;
  return r;
}

BitVec BitVec::operator|(const BitVec& o) const {
  BitVec r = *this;
  r |= o;
  return r;
}

BitVec BitVec::operator^(const BitVec& o) const {
  BitVec r = *this;
  r ^= o;
  return r;
}

BitVec BitVec::operator~() const {
  BitVec r = *this;
  r.flip();
  return r;
}

void BitVec::reset(std::size_t n) {
  size_ = n;
  words_.assign((n + 63) / 64, 0);
}

void BitVec::fill(bool v) {
  for (auto& w : words_) {
    w = v ? ~0ULL : 0ULL;
  }
  if (v) {
    mask_tail();
  }
}

void BitVec::randomize(Rng& rng, double p) {
  if (p == 0.5) {
    for (auto& w : words_) {
      w = rng.next();
    }
    mask_tail();
    return;
  }
  fill(false);
  for (std::size_t i = 0; i < size_; ++i) {
    if (rng.flip(p)) {
      set(i, true);
    }
  }
}

std::uint64_t fnv1a(const void* data, std::size_t num_bytes,
                    std::uint64_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < num_bytes; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xbf58476d1ce4e5b9ULL;
  return h ^ (h >> 29);
}

std::uint64_t BitVec::hash() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint64_t w : words_) {
    h ^= w;
    h *= 0x100000001b3ULL;
  }
  return h ^ size_;
}

void BitVec::mask_tail() {
  const std::size_t rem = size_ & 63;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (1ULL << rem) - 1;
  }
}

}  // namespace lsml::core
