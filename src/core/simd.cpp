#include "simd.hpp"

#include <atomic>
#include <bit>
#include <cstdio>
#include <cstdlib>

#include "simd_internal.hpp"

namespace lsml::core::simd {

namespace {

#include "simd_kernels.inc"

const Ops kScalar = {Backend::kScalar,
                     "scalar",
                     &and2_generic,
                     &sweep_generic,
                     &popcount_generic,
                     &popcount_xor_generic,
                     &popcount_and_generic,
                     &popcount_andnot_generic};

/// Can this CPU execute backend `b`? (Orthogonal to whether the backend's
/// kernels were compiled in — see ops_for.)
bool cpu_supports(Backend b) {
#if defined(__x86_64__) || defined(__i386__) || defined(_M_X64)
  switch (b) {
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case Backend::kAvx512:
      // The avx512 kernels mix 512- and 256-bit ops: F for the wide lanes,
      // VL (+BW for completeness) for the 256-bit remainder path.
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512bw") != 0 &&
             __builtin_cpu_supports("avx512vl") != 0;
    case Backend::kNeon:
      return false;
  }
  return false;
#elif defined(__aarch64__)
  return b == Backend::kScalar || b == Backend::kNeon;
#else
  return b == Backend::kScalar;
#endif
}

const Ops* compiled_ops(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return &kScalar;
    case Backend::kAvx2:
      return avx2_ops();
    case Backend::kAvx512:
      return avx512_ops();
    case Backend::kNeon:
      return neon_ops();
  }
  return nullptr;
}

// Test-only override; atomic so a stale read from a pool thread is a
// well-defined load rather than a TSan report.
std::atomic<const Ops*> g_forced{nullptr};

const Ops* detect() {
  if (const char* env = std::getenv("LSML_SIMD");
      env != nullptr && *env != '\0') {
    Backend b;
    if (!backend_from_string(env, &b)) {
      std::fprintf(stderr,
                   "lsml: LSML_SIMD=%s is not a backend name "
                   "(scalar|avx2|avx512|neon); auto-selecting\n",
                   env);
    } else if (const Ops* o = ops_for(b)) {
      return o;
    } else {
      std::fprintf(stderr,
                   "lsml: LSML_SIMD=%s is not available on this build/CPU; "
                   "auto-selecting\n",
                   env);
    }
  }
  // avx2 outranks avx512 on purpose: 256-bit bitwise throughput is
  // uniformly high, while 512-bit lanes downclock or double-pump on many
  // parts (measurably slower on the dev box). avx512 stays compiled,
  // tested, and one LSML_SIMD=avx512 away for hosts where it wins.
  for (Backend b : {Backend::kAvx2, Backend::kAvx512, Backend::kNeon}) {
    if (const Ops* o = ops_for(b)) return o;
  }
  return &kScalar;
}

}  // namespace

const Ops* ops_for(Backend b) {
  if (!cpu_supports(b)) return nullptr;
  return compiled_ops(b);
}

const Ops& ops() {
  if (const Ops* forced = g_forced.load(std::memory_order_acquire))
    return *forced;
  static const Ops* const resolved = detect();
  return *resolved;
}

Backend active_backend() { return ops().backend; }

std::vector<Backend> available_backends() {
  std::vector<Backend> out;
  for (Backend b :
       {Backend::kScalar, Backend::kAvx2, Backend::kAvx512, Backend::kNeon}) {
    if (ops_for(b) != nullptr) out.push_back(b);
  }
  return out;
}

const char* to_string(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kAvx512:
      return "avx512";
    case Backend::kNeon:
      return "neon";
  }
  return "?";
}

bool backend_from_string(const std::string& name, Backend* out) {
  for (Backend b :
       {Backend::kScalar, Backend::kAvx2, Backend::kAvx512, Backend::kNeon}) {
    if (name == to_string(b)) {
      *out = b;
      return true;
    }
  }
  return false;
}

void force_backend(Backend b) {
  const Ops* o = ops_for(b);
  if (o == nullptr) {
    std::fprintf(stderr, "lsml: cannot force simd backend %s (unavailable)\n",
                 to_string(b));
    return;
  }
  g_forced.store(o, std::memory_order_release);
}

void clear_forced_backend() {
  g_forced.store(nullptr, std::memory_order_release);
}

}  // namespace lsml::core::simd
