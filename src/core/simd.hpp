#pragma once
// Explicit SIMD kernels for packed 64-bit-word bit streams.
//
// Every hot loop in the library — the SimEngine AND sweep, BitVec
// reductions, accuracy scoring — is a handful of bitwise span primitives.
// This header owns them once, with one kernel table (Ops) per instruction
// set: a portable scalar backend that is always compiled, plus AVX2,
// AVX-512 and NEON backends compiled per-TU with the matching -m flags so
// the rest of the build stays baseline-arch.
//
// Dispatch: the active table is resolved exactly once, on first use —
// the LSML_SIMD environment override first (scalar|avx2|avx512|neon; an
// unavailable or unknown value warns on stderr and falls back), then the
// best backend the CPU supports (avx2 > avx512 > neon > scalar; avx2
// outranks avx512 in auto-selection because 512-bit throughput is
// microarchitecture-dependent — opt in with LSML_SIMD=avx512 where it
// wins).
//
// Determinism contract: every backend is bit-identical. Kernels are pure
// bitwise ops over whole 64-bit words (no floats, no reassociation-
// sensitive arithmetic), and the sweep kernel preserves the BitVec
// tail-zero invariant via the caller-supplied tail mask, so swapping
// backends — or splitting a sweep across threads by word columns — can
// never change a single result bit.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lsml::core::simd {

enum class Backend : std::uint8_t {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
  kNeon = 3,
};

/// One AND gate of a packed sweep. Fanins are spelled as
/// (row_index << 1) | complement — the aig::Lit convention over arena
/// rows — so a gate computes
///   row(dst)[w] = (row(a >> 1)[w] ^ mask(a & 1)) &
///                 (row(b >> 1)[w] ^ mask(b & 1))
/// where mask(c) is all-ones when c is set.
struct SweepGate {
  std::uint32_t dst;
  std::uint32_t a;
  std::uint32_t b;
};

/// Kernel table of one backend. All pointers are non-null.
struct Ops {
  Backend backend;
  const char* name;

  /// dst[w] = (a[w] ^ ca) & (b[w] ^ cb) for w in [0, n); ca/cb are
  /// all-ones or all-zero complement masks.
  void (*and2)(std::uint64_t* dst, const std::uint64_t* a,
               const std::uint64_t* b, std::uint64_t ca, std::uint64_t cb,
               std::size_t n);

  /// Straight-line sweep of `count` gates (topological order required)
  /// over word columns [w0, w1) of a row arena with `wpr` words per row.
  /// When w1 == wpr the last word of every computed row is ANDed with
  /// `tail_mask` (complemented fanins set bits past the row count, and the
  /// arena keeps the BitVec tail-zero invariant). Distinct column ranges
  /// touch disjoint words, so concurrent calls over a partition of
  /// [0, wpr) are race-free and bit-identical to one full-range call.
  void (*sweep)(std::uint64_t* base, std::size_t wpr,
                const SweepGate* gates, std::size_t count, std::size_t w0,
                std::size_t w1, std::uint64_t tail_mask);

  std::size_t (*popcount)(const std::uint64_t* p, std::size_t n);
  /// popcount(p ^ q) — the Hamming-distance reduction behind count_equal.
  std::size_t (*popcount_xor)(const std::uint64_t* p, const std::uint64_t* q,
                              std::size_t n);
  std::size_t (*popcount_and)(const std::uint64_t* p, const std::uint64_t* q,
                              std::size_t n);
  /// popcount(p & ~q).
  std::size_t (*popcount_andnot)(const std::uint64_t* p,
                                 const std::uint64_t* q, std::size_t n);
};

/// Kernel table of the active backend (env override + CPUID, resolved once
/// at first use and cached; see the dispatch order above).
const Ops& ops();

/// Backend ops() currently resolves to.
Backend active_backend();

/// Kernel table of a specific backend, or nullptr when it is not compiled
/// into this binary or this CPU cannot execute it. The parity tests sweep
/// every non-null backend.
const Ops* ops_for(Backend b);

/// Backends usable on this machine, scalar first.
std::vector<Backend> available_backends();

const char* to_string(Backend b);

/// Parses "scalar" | "avx2" | "avx512" | "neon" (the LSML_SIMD spellings).
bool backend_from_string(const std::string& name, Backend* out);

/// Test/bench-only: pins ops() to `b` (which must be available) until
/// clear_forced_backend(). Not safe to call concurrently with kernel use.
void force_backend(Backend b);
void clear_forced_backend();

}  // namespace lsml::core::simd
