#pragma once
// A small fixed-size worker pool for contest-style fan-out.
//
// Design goals, in order: deterministic results (the pool never decides
// *what* runs, only *when*), exception safety (a throwing task surfaces in
// the caller, not std::terminate), and zero cleverness — one shared queue
// guarded by a mutex is plenty when each task is a full learner fit that
// runs for milliseconds to seconds. parallel_for is the main entry point:
// workers steal the next index from a shared counter, so long tasks don't
// leave siblings idle the way static chunking would. The calling thread
// never executes tasks itself — a pool of N means exactly N concurrent
// workers.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace lsml::core {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means hardware concurrency.
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t num_threads() const { return workers_.size(); }

  /// What ThreadPool(0) resolves to (never 0, even if the runtime cannot
  /// report hardware concurrency).
  static std::size_t default_num_threads();

  /// Enqueues a task; the future rethrows any exception the task threw.
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> result = packaged->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push([packaged] { (*packaged)(); });
    }
    work_available_.notify_one();
    return result;
  }

  /// Runs body(i) for every i in [0, count) on the pool's workers and
  /// blocks until all complete; the calling thread does not execute tasks.
  /// Indices are claimed dynamically (one shared counter), so uneven task
  /// costs balance out. If any invocation throws, the first exception (by
  /// completion order) is rethrown here after all workers have stopped
  /// picking up new indices.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

  /// The contest engines' shared thread-count convention in one place:
  /// resolves `num_threads_option` (1 or negative = serial in the calling
  /// thread, 0 = one worker per hardware thread, N > 1 = exactly N
  /// workers) and runs body(i) for i in [0, count) accordingly. Trivial
  /// workloads (count <= 1) always run inline. Never changes results.
  static void run_indexed(std::size_t count, int num_threads_option,
                          const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  bool shutting_down_ = false;
};

}  // namespace lsml::core
