#pragma once
// A small epoll reactor — the nonblocking I/O front end under
// `server::Server` and the multiplexed client in bench_serve.
//
// One EventLoop owns one epoll instance and runs on one thread (the one
// that calls run()). File descriptors are registered level-triggered with
// an interest mask (kRead/kWrite) and a callback; the loop invokes the
// callback with the ready mask (kError is reported whether or not it was
// asked for). All add/set_interest/remove calls must happen on the loop
// thread — cross-thread work enters through post(), which enqueues a task
// and wakes the loop via an eventfd. That one primitive is enough to build
// everything above: worker threads post "response ready" continuations,
// stop() posts the shutdown.
//
// The loop never closes registered fds — ownership stays with the caller.
// Removing an fd (or stopping the loop) from inside a callback is safe:
// dispatch looks entries up by fd per event and holds a reference on the
// entry it is invoking, so self-removal cannot free a running callback.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace lsml::core {

class EventLoop {
 public:
  /// Ready/interest bits. kError (EPOLLERR/EPOLLHUP) is always delivered.
  static constexpr std::uint32_t kRead = 1u;
  static constexpr std::uint32_t kWrite = 2u;
  static constexpr std::uint32_t kError = 4u;

  using Callback = std::function<void(std::uint32_t ready)>;
  using Task = std::function<void()>;

  /// Creates the epoll instance and wakeup eventfd; throws
  /// std::runtime_error with errno context on failure.
  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` (loop thread only; `fd` must not already be present).
  void add(int fd, std::uint32_t interest, Callback callback);
  /// Replaces the interest mask of a registered fd (loop thread only).
  void set_interest(int fd, std::uint32_t interest);
  /// Unregisters `fd` without closing it (loop thread only; safe from
  /// inside its own callback). Unknown fds are ignored.
  void remove(int fd);
  [[nodiscard]] std::size_t num_fds() const { return entries_.size(); }

  /// Enqueues `task` to run on the loop thread and wakes the loop. Safe
  /// from any thread, including the loop thread itself and after stop()
  /// (tasks enqueued after the loop exits are discarded, never run).
  void post(Task task);

  /// Dispatches events and posted tasks until stop(). Returns after the
  /// stop flag is observed and the current batch finishes.
  void run();
  /// Requests run() to return; safe from any thread. Idempotent.
  void stop();
  [[nodiscard]] bool stopped() const { return stop_requested_.load(); }

  /// True on the thread currently inside run() (false when not running).
  [[nodiscard]] bool in_loop_thread() const {
    return loop_thread_.load() == std::this_thread::get_id();
  }

 private:
  struct Entry {
    std::uint32_t interest = 0;
    Callback callback;
  };

  void wake();
  void drain_wakeups();
  void run_posted_tasks();
  static std::uint32_t to_epoll(std::uint32_t interest);

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::unordered_map<int, std::shared_ptr<Entry>> entries_;

  std::mutex tasks_mutex_;
  std::vector<Task> tasks_;

  std::atomic<bool> stop_requested_{false};
  /// True while a wakeup eventfd write is already pending (post() fires at
  /// most one per epoll cycle).
  std::atomic<bool> wake_armed_{false};
  std::atomic<std::thread::id> loop_thread_{};
};

}  // namespace lsml::core
