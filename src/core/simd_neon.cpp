// NEON backend (aarch64). NEON is baseline on aarch64, so no per-source
// flags are needed — the body is simply absent on other targets.

#include <bit>
#include <cstddef>
#include <cstdint>

#include "simd.hpp"
#include "simd_internal.hpp"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

namespace lsml::core::simd {

namespace {

#include "simd_kernels.inc"

inline uint64x2_t and2_vec(uint64x2_t a, uint64x2_t b, uint64x2_t ca,
                           uint64x2_t cb) {
  return vandq_u64(veorq_u64(a, ca), veorq_u64(b, cb));
}

void and2_neon(std::uint64_t* dst, const std::uint64_t* a,
               const std::uint64_t* b, std::uint64_t ca, std::uint64_t cb,
               std::size_t n) {
  const uint64x2_t vca = vdupq_n_u64(ca);
  const uint64x2_t vcb = vdupq_n_u64(cb);
  std::size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    vst1q_u64(dst + w,
              and2_vec(vld1q_u64(a + w), vld1q_u64(b + w), vca, vcb));
    vst1q_u64(dst + w + 2, and2_vec(vld1q_u64(a + w + 2),
                                    vld1q_u64(b + w + 2), vca, vcb));
  }
  for (; w + 2 <= n; w += 2)
    vst1q_u64(dst + w,
              and2_vec(vld1q_u64(a + w), vld1q_u64(b + w), vca, vcb));
  for (; w < n; ++w) dst[w] = (a[w] ^ ca) & (b[w] ^ cb);
}

void sweep_neon(std::uint64_t* base, std::size_t wpr, const SweepGate* gates,
                std::size_t count, std::size_t w0, std::size_t w1,
                std::uint64_t tail_mask) {
  const std::size_t n = w1 - w0;
  if (n < 2) {
    sweep_generic(base, wpr, gates, count, w0, w1, tail_mask);
    return;
  }
  const bool masks_tail = w1 == wpr;
  for (std::size_t i = 0; i < count; ++i) {
    const SweepGate g = gates[i];
    const std::uint64_t* a =
        base + static_cast<std::size_t>(g.a >> 1) * wpr + w0;
    const std::uint64_t* b =
        base + static_cast<std::size_t>(g.b >> 1) * wpr + w0;
    std::uint64_t* dst = base + static_cast<std::size_t>(g.dst) * wpr + w0;
    const uint64x2_t vca = vdupq_n_u64(compl_mask(g.a));
    const uint64x2_t vcb = vdupq_n_u64(compl_mask(g.b));
    std::size_t w = 0;
    for (; w + 4 <= n; w += 4) {
      vst1q_u64(dst + w,
                and2_vec(vld1q_u64(a + w), vld1q_u64(b + w), vca, vcb));
      vst1q_u64(dst + w + 2, and2_vec(vld1q_u64(a + w + 2),
                                      vld1q_u64(b + w + 2), vca, vcb));
    }
    for (; w + 2 <= n; w += 2)
      vst1q_u64(dst + w,
                and2_vec(vld1q_u64(a + w), vld1q_u64(b + w), vca, vcb));
    if (w < n) {
      // Odd remainder: one overlapped 128-bit vector ending at n (n >= 2;
      // fanin rows are always distinct from dst).
      w = n - 2;
      vst1q_u64(dst + w,
                and2_vec(vld1q_u64(a + w), vld1q_u64(b + w), vca, vcb));
    }
    if (masks_tail) dst[n - 1] &= tail_mask;
  }
}

// Reductions: aarch64's scalar std::popcount already lowers to the NEON
// cnt+addv sequence, so the generic bodies are the right kernels here.
const Ops kNeon = {Backend::kNeon,
                   "neon",
                   &and2_neon,
                   &sweep_neon,
                   &popcount_generic,
                   &popcount_xor_generic,
                   &popcount_and_generic,
                   &popcount_andnot_generic};

}  // namespace

const Ops* neon_ops() { return &kNeon; }

}  // namespace lsml::core::simd

#else  // !(__aarch64__ && __ARM_NEON)

namespace lsml::core::simd {
const Ops* neon_ops() { return nullptr; }
}  // namespace lsml::core::simd

#endif
