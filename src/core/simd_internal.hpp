#pragma once
// Internal linkage between the simd dispatch TU and the per-ISA backend
// TUs. Each simd_<isa>.cpp defines exactly one of these, returning its
// kernel table when the ISA was compiled in and nullptr otherwise (the
// backend TUs are always part of the build; only their bodies are gated
// on __AVX2__ / __AVX512F__ / __ARM_NEON, which the per-TU CMake
// COMPILE_OPTIONS turn on where the compiler supports them).
//
// Shared generic kernel *bodies* live in simd_kernels.inc, which every
// backend TU includes inside an anonymous namespace: the same source
// compiled under that TU's -m flags (hardware POPCNT under -mavx2, etc.)
// without any cross-TU ODR hazard from flag-divergent inline functions.

#include "simd.hpp"

namespace lsml::core::simd {

const Ops* avx2_ops();
const Ops* avx512_ops();
const Ops* neon_ops();

}  // namespace lsml::core::simd
