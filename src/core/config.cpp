#include "core/config.hpp"

#include <cstdlib>

namespace lsml::core {

std::string ScaleConfig::name() const {
  switch (scale) {
    case Scale::kSmoke:
      return "smoke";
    case Scale::kFast:
      return "fast";
    case Scale::kFull:
      return "full";
  }
  return "?";
}

ScaleConfig make_scale(Scale s) {
  ScaleConfig cfg;
  cfg.scale = s;
  switch (s) {
    case Scale::kSmoke:
      cfg.train_rows = 400;
      cfg.valid_rows = 400;
      cfg.test_rows = 400;
      cfg.num_benchmarks = 20;
      break;
    case Scale::kFast:
      cfg.train_rows = 2000;
      cfg.valid_rows = 2000;
      cfg.test_rows = 2000;
      cfg.num_benchmarks = 100;
      break;
    case Scale::kFull:
      cfg.train_rows = 6400;
      cfg.valid_rows = 6400;
      cfg.test_rows = 6400;
      cfg.num_benchmarks = 100;
      break;
  }
  return cfg;
}

int threads_from_env(const char* name, int fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const long value = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || value < 0 || value > 4096) {
    return fallback;
  }
  return static_cast<int>(value);
}

ScaleConfig scale_from_env() {
  const char* env = std::getenv("LSML_SCALE");
  if (env == nullptr) {
    return make_scale(Scale::kFast);
  }
  const std::string value{env};
  if (value == "smoke") {
    return make_scale(Scale::kSmoke);
  }
  if (value == "full") {
    return make_scale(Scale::kFull);
  }
  return make_scale(Scale::kFast);
}

}  // namespace lsml::core
