#include "core/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace lsml::core {

std::size_t ThreadPool::default_num_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = default_num_threads();
  }
  workers_.reserve(num_threads);
  try {
    for (std::size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  } catch (...) {
    // Thread spawning can fail mid-loop (EAGAIN under resource pressure);
    // join what started so unwinding never destroys a joinable thread
    // (std::terminate) and the failure stays a catchable exception.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutting_down_ = true;
    }
    work_available_.notify_all();
    for (auto& worker : workers_) {
      worker.join();
    }
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutting down and drained
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // packaged_task captures exceptions into its future
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) {
    return;
  }
  // Each pool worker pulls the next index from a shared counter until the
  // range is exhausted; the calling thread only waits, so concurrency is
  // exactly num_threads(). On the first exception the counter is pushed
  // past the end so siblings stop claiming new indices.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> have_error{false};
  std::exception_ptr error;
  std::mutex error_mutex;

  const auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= count) {
        return;
      }
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!have_error.exchange(true)) {
          error = std::current_exception();
        }
        next.store(count);
        return;
      }
    }
  };

  // drain captures this frame by reference, so every enqueued copy must be
  // joined before the frame unwinds — including when a submit() throws.
  std::vector<std::future<void>> tickets;
  const std::size_t workers = std::min(num_threads(), count);
  tickets.reserve(workers);
  try {
    for (std::size_t t = 0; t < workers; ++t) {
      tickets.push_back(submit(drain));
    }
  } catch (...) {
    next.store(count);
    for (auto& ticket : tickets) {
      ticket.get();
    }
    throw;
  }
  for (auto& ticket : tickets) {
    ticket.get();
  }
  if (have_error.load()) {
    std::rethrow_exception(error);
  }
}

void ThreadPool::run_indexed(std::size_t count, int num_threads_option,
                             const std::function<void(std::size_t)>& body) {
  const std::size_t effective =
      num_threads_option == 0
          ? default_num_threads()
          : static_cast<std::size_t>(std::max(1, num_threads_option));
  if (effective == 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      body(i);
    }
    return;
  }
  ThreadPool pool(effective);
  pool.parallel_for(count, body);
}

}  // namespace lsml::core
