// AVX-512 backend. Compiled with -mavx512f -mavx512bw -mavx512vl via
// per-source COMPILE_OPTIONS; absent (nullptr) when the compiler cannot.
// 512-bit main lanes with a 256-bit remainder path (VL), so mid-width
// rows like wpr=4 still vectorize instead of falling to scalar.

#include <bit>
#include <cstddef>
#include <cstdint>

#include "simd.hpp"
#include "simd_internal.hpp"

#if defined(__AVX512F__) && defined(__AVX512VL__)

#include <immintrin.h>

namespace lsml::core::simd {

namespace {

#include "simd_kernels.inc"

inline __m512i and2_vec512(__m512i a, __m512i b, __m512i ca, __m512i cb) {
  return _mm512_and_si512(_mm512_xor_si512(a, ca), _mm512_xor_si512(b, cb));
}

inline __m256i and2_vec256(__m256i a, __m256i b, __m256i ca, __m256i cb) {
  return _mm256_and_si256(_mm256_xor_si256(a, ca), _mm256_xor_si256(b, cb));
}

inline __m512i load512(const std::uint64_t* p) {
  return _mm512_loadu_si512(reinterpret_cast<const void*>(p));
}

inline void store512(std::uint64_t* p, __m512i v) {
  _mm512_storeu_si512(reinterpret_cast<void*>(p), v);
}

inline __m256i load256(const std::uint64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void store256(std::uint64_t* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

void and2_avx512(std::uint64_t* dst, const std::uint64_t* a,
                 const std::uint64_t* b, std::uint64_t ca, std::uint64_t cb,
                 std::size_t n) {
  const __m512i vca = _mm512_set1_epi64(static_cast<long long>(ca));
  const __m512i vcb = _mm512_set1_epi64(static_cast<long long>(cb));
  std::size_t w = 0;
  for (; w + 8 <= n; w += 8)
    store512(dst + w, and2_vec512(load512(a + w), load512(b + w), vca, vcb));
  if (w < n) {
    // Masked epilogue: AVX-512 writes exactly the n-w remaining words.
    const __mmask8 m = static_cast<__mmask8>((1u << (n - w)) - 1u);
    const __m512i va = _mm512_maskz_loadu_epi64(m, a + w);
    const __m512i vb = _mm512_maskz_loadu_epi64(m, b + w);
    _mm512_mask_storeu_epi64(dst + w, m, and2_vec512(va, vb, vca, vcb));
  }
}

void sweep_avx512(std::uint64_t* base, std::size_t wpr,
                  const SweepGate* gates, std::size_t count, std::size_t w0,
                  std::size_t w1, std::uint64_t tail_mask) {
  const std::size_t n = w1 - w0;
  if (n < 4) {
    sweep_generic(base, wpr, gates, count, w0, w1, tail_mask);
    return;
  }
  const bool masks_tail = w1 == wpr;
  if (n < 8) {
    // 4..7 words: 256-bit op plus an overlapped 256-bit remainder.
    for (std::size_t i = 0; i < count; ++i) {
      const SweepGate g = gates[i];
      const std::uint64_t* a =
          base + static_cast<std::size_t>(g.a >> 1) * wpr + w0;
      const std::uint64_t* b =
          base + static_cast<std::size_t>(g.b >> 1) * wpr + w0;
      std::uint64_t* dst = base + static_cast<std::size_t>(g.dst) * wpr + w0;
      const __m256i vca =
          _mm256_set1_epi64x(-static_cast<long long>(g.a & 1u));
      const __m256i vcb =
          _mm256_set1_epi64x(-static_cast<long long>(g.b & 1u));
      store256(dst, and2_vec256(load256(a), load256(b), vca, vcb));
      if (n > 4) {
        const std::size_t w = n - 4;
        store256(dst + w,
                 and2_vec256(load256(a + w), load256(b + w), vca, vcb));
      }
      if (masks_tail) dst[n - 1] &= tail_mask;
    }
    return;
  }
  for (std::size_t i = 0; i < count; ++i) {
    const SweepGate g = gates[i];
    const std::uint64_t* a =
        base + static_cast<std::size_t>(g.a >> 1) * wpr + w0;
    const std::uint64_t* b =
        base + static_cast<std::size_t>(g.b >> 1) * wpr + w0;
    std::uint64_t* dst = base + static_cast<std::size_t>(g.dst) * wpr + w0;
    const __m512i vca = _mm512_set1_epi64(-static_cast<long long>(g.a & 1u));
    const __m512i vcb = _mm512_set1_epi64(-static_cast<long long>(g.b & 1u));
    std::size_t w = 0;
    for (; w + 8 <= n; w += 8)
      store512(dst + w,
               and2_vec512(load512(a + w), load512(b + w), vca, vcb));
    if (w < n) {
      // Overlapped 512-bit remainder ending exactly at n (n >= 8 here);
      // rewrites already-computed words with identical values, and fanin
      // rows are always distinct from dst.
      w = n - 8;
      store512(dst + w,
               and2_vec512(load512(a + w), load512(b + w), vca, vcb));
    }
    if (masks_tail) dst[n - 1] &= tail_mask;
  }
}

// Generic reduction bodies under the avx512 flags: hardware POPCNT, same
// as the avx2 TU (no VPOPCNTDQ dependency — not checked at dispatch).
const Ops kAvx512 = {Backend::kAvx512,
                     "avx512",
                     &and2_avx512,
                     &sweep_avx512,
                     &popcount_generic,
                     &popcount_xor_generic,
                     &popcount_and_generic,
                     &popcount_andnot_generic};

}  // namespace

const Ops* avx512_ops() { return &kAvx512; }

}  // namespace lsml::core::simd

#else  // !(__AVX512F__ && __AVX512VL__)

namespace lsml::core::simd {
const Ops* avx512_ops() { return nullptr; }
}  // namespace lsml::core::simd

#endif
