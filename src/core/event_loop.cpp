#include "core/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "obs/registry.hpp"

namespace lsml::core {

namespace {

[[noreturn]] void fail_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    fail_errno("epoll_create1");
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    const int saved = errno;
    ::close(epoll_fd_);
    errno = saved;
    fail_errno("eventfd");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    const int saved = errno;
    ::close(wake_fd_);
    ::close(epoll_fd_);
    errno = saved;
    fail_errno("epoll_ctl(wakeup)");
  }
}

EventLoop::~EventLoop() {
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

std::uint32_t EventLoop::to_epoll(std::uint32_t interest) {
  std::uint32_t events = 0;
  if ((interest & kRead) != 0) {
    events |= EPOLLIN;
  }
  if ((interest & kWrite) != 0) {
    events |= EPOLLOUT;
  }
  return events;
}

void EventLoop::add(int fd, std::uint32_t interest, Callback callback) {
  auto entry = std::make_shared<Entry>();
  entry->interest = interest;
  entry->callback = std::move(callback);
  epoll_event ev{};
  ev.events = to_epoll(interest);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    fail_errno("epoll_ctl(add)");
  }
  entries_[fd] = std::move(entry);
}

void EventLoop::set_interest(int fd, std::uint32_t interest) {
  const auto it = entries_.find(fd);
  if (it == entries_.end()) {
    return;
  }
  if (it->second->interest == interest) {
    return;
  }
  epoll_event ev{};
  ev.events = to_epoll(interest);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    fail_errno("epoll_ctl(mod)");
  }
  it->second->interest = interest;
}

void EventLoop::remove(int fd) {
  const auto it = entries_.find(fd);
  if (it == entries_.end()) {
    return;
  }
  // The fd is still open here (the loop never closes fds), so DEL cannot
  // legitimately fail; ignore a racing close by the owner anyway.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  entries_.erase(it);
}

void EventLoop::wake() {
  const std::uint64_t one = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending wakeup.
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void EventLoop::drain_wakeups() {
  std::uint64_t count = 0;
  while (::read(wake_fd_, &count, sizeof count) > 0) {
  }
}

void EventLoop::post(Task task) {
  {
    std::lock_guard<std::mutex> lock(tasks_mutex_);
    tasks_.push_back(std::move(task));
  }
  // One eventfd write per epoll cycle is enough: wake_armed_ stays set
  // until the loop is about to drain the queue, so a burst of posts (one
  // worker completion per response at high request rates) costs one
  // syscall, not one each. Posts from the loop thread itself skip even
  // that — run_posted_tasks() runs at the end of the current cycle.
  if (!in_loop_thread() && !wake_armed_.exchange(true)) {
    wake();
  }
}

void EventLoop::run_posted_tasks() {
  // Disarm before swapping: a cross-thread post that lands after the swap
  // must trigger a fresh wakeup (an extra eventfd write for one that lands
  // between the two lines is harmless).
  wake_armed_.store(false);
  // Drain until empty: a task posted from the loop thread mid-batch (which
  // skips the eventfd) still runs this cycle instead of stranding until
  // the next readiness event.
  while (true) {
    std::vector<Task> batch;
    {
      std::lock_guard<std::mutex> lock(tasks_mutex_);
      if (tasks_.empty()) {
        return;
      }
      batch.swap(tasks_);
    }
    for (Task& task : batch) {
      task();
    }
  }
}

void EventLoop::run() {
  loop_thread_.store(std::this_thread::get_id());
  // Loop-iteration telemetry: one owned process counter shared by every
  // EventLoop (registry references are stable for the process lifetime).
  static obs::Counter& iterations =
      obs::Registry::instance().counter("lsml_event_loop_iterations_total");
  epoll_event events[128];
  while (!stop_requested_.load(std::memory_order_acquire)) {
    iterations.add(1);
    const int n = ::epoll_wait(epoll_fd_, events,
                               static_cast<int>(std::size(events)), -1);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      fail_errno("epoll_wait");
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        drain_wakeups();
        continue;
      }
      // Look the entry up per event: an earlier callback in this batch may
      // have removed this fd. Holding the shared_ptr keeps the callback
      // alive even if it removes itself.
      const auto it = entries_.find(fd);
      if (it == entries_.end()) {
        continue;
      }
      const std::shared_ptr<Entry> entry = it->second;
      std::uint32_t ready = 0;
      if ((events[i].events & (EPOLLIN | EPOLLRDHUP)) != 0) {
        ready |= kRead;
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        ready |= kWrite;
      }
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
        ready |= kError;
      }
      if (ready != 0) {
        entry->callback(ready);
      }
    }
    run_posted_tasks();
  }
  // One final drain so a task posted together with stop() still runs.
  run_posted_tasks();
  loop_thread_.store(std::thread::id());
}

void EventLoop::stop() {
  stop_requested_.store(true, std::memory_order_release);
  wake();
}

}  // namespace lsml::core
