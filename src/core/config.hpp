#pragma once
// Experiment scale configuration.
//
// The paper's protocol uses 6400 training / 6400 validation / 6400 test
// minterms per benchmark. That is `Scale::kFull`. To keep the bench suite
// runnable on a laptop in minutes, benches default to `Scale::kFast`
// (reduced sample counts and trimmed hyper-parameter grids); the shapes of
// all results are preserved. `Scale::kSmoke` is for CI-style sanity runs.
//
// Selected via the LSML_SCALE environment variable: "smoke", "fast", "full".

#include <cstddef>
#include <string>

namespace lsml::core {

enum class Scale { kSmoke, kFast, kFull };

struct ScaleConfig {
  Scale scale = Scale::kFast;
  std::size_t train_rows = 2000;  ///< per-benchmark training minterms
  std::size_t valid_rows = 2000;  ///< validation minterms
  std::size_t test_rows = 2000;   ///< held-out test minterms
  std::size_t num_benchmarks = 100;  ///< how many of ex00..ex99 to run

  [[nodiscard]] std::string name() const;
};

/// Reads LSML_SCALE (default "fast") and returns the matching config.
ScaleConfig scale_from_env();

/// Reads a thread-count env var (benches/examples use LSML_THREADS).
/// Unset, non-numeric, negative, or > 4096 values return `fallback`; 0
/// means "one worker per hardware thread" (ContestOptions/ThreadPool
/// convention).
int threads_from_env(const char* name, int fallback);

/// Config for an explicit scale value.
ScaleConfig make_scale(Scale s);

}  // namespace lsml::core
