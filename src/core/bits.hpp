#pragma once
// Packed bit vectors used throughout the library.
//
// Datasets store one BitVec per input column and one for the labels, so a
// learner evaluates candidate splits / simulates circuits 64 rows at a time.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/rng.hpp"

namespace lsml::core {

/// Byte-wise FNV-1a over a buffer; chain buffers by passing the previous
/// return value as `seed`. Used for content digests (dataset hashes,
/// benchmark-name ids) whose values key on-disk caches — changing this
/// function requires bumping suite::kResultCacheSchemaVersion.
std::uint64_t fnv1a(const void* data, std::size_t num_bytes,
                    std::uint64_t seed = 0xcbf29ce484222325ULL);

/// SplitMix64-style combine of `v` into running digest `h` (order
/// matters). Same cache-key caveat as fnv1a above.
std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v);

/// Fixed-length vector of bits packed into 64-bit words.
///
/// Bits beyond size() inside the last word are kept at zero (an invariant
/// every mutating operation re-establishes), so popcount-style reductions
/// never need masking.
class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t n, bool value = false);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t num_words() const { return words_.size(); }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] bool get(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }
  void set(std::size_t i, bool v) {
    const std::uint64_t mask = 1ULL << (i & 63);
    if (v) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }

  [[nodiscard]] const std::uint64_t* words() const { return words_.data(); }
  [[nodiscard]] std::uint64_t* words() { return words_.data(); }
  [[nodiscard]] std::uint64_t word(std::size_t w) const { return words_[w]; }

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const;

  /// Number of positions where this and other agree. Sizes must match.
  [[nodiscard]] std::size_t count_equal(const BitVec& other) const;

  /// popcount(this & other).
  [[nodiscard]] std::size_t count_and(const BitVec& other) const;

  /// popcount(this & ~other).
  [[nodiscard]] std::size_t count_andnot(const BitVec& other) const;

  /// popcount(this & a & b).
  [[nodiscard]] std::size_t count_and2(const BitVec& a, const BitVec& b) const;

  /// popcount(this & a & ~b).
  [[nodiscard]] std::size_t count_and_andnot(const BitVec& a,
                                             const BitVec& b) const;

  BitVec& operator&=(const BitVec& o);
  BitVec& operator|=(const BitVec& o);
  BitVec& operator^=(const BitVec& o);
  /// Complements all bits (keeps the tail-zero invariant).
  void flip();

  [[nodiscard]] BitVec operator&(const BitVec& o) const;
  [[nodiscard]] BitVec operator|(const BitVec& o) const;
  [[nodiscard]] BitVec operator^(const BitVec& o) const;
  [[nodiscard]] BitVec operator~() const;
  bool operator==(const BitVec& o) const = default;

  void fill(bool v);
  /// Resizes to `n` bits, all zero, reusing the word buffer's capacity —
  /// the scratch-reuse primitive behind SimEngine::extract_into.
  void reset(std::size_t n);
  /// Fills with i.i.d. Bernoulli(p) bits.
  void randomize(Rng& rng, double p = 0.5);

  /// FNV-1a hash of the payload (used to deduplicate sampled rows).
  [[nodiscard]] std::uint64_t hash() const;

  /// Re-establishes the tail-zero invariant: clears bits past size() in
  /// the last word. The one supported way for word-level writers (code
  /// using the mutable words() pointer) to restore the contract after a
  /// raw write; every BitVec operation above maintains it internally.
  void mask_tail();

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace lsml::core
