#include "synth/pass_manager.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "aig/aig_approx.hpp"
#include "aig/aig_opt.hpp"
#include "core/bits.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sat/cec.hpp"
#include "sat/fraig.hpp"

namespace lsml::synth {

namespace {

using Clock = std::chrono::steady_clock;

// Process-wide counters live in the obs::Registry so `lsml query metrics`
// and PassManager::runs_executed()/memo_hits() read the same cells.
obs::Counter& runs_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("lsml_synth_runs_total");
  return c;
}

obs::Counter& memo_hits_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("lsml_synth_memo_hits_total");
  return c;
}

/// Per-pass wall-time and AND-reduction histograms, keyed by pass
/// spelling. A registry lookup per pass execution is noise next to the
/// pass itself (rewrites run for milliseconds).
void record_pass_metrics(const std::string& name, double ms,
                         std::uint32_t ands_before,
                         std::uint32_t ands_after) {
  obs::Registry& reg = obs::Registry::instance();
  reg.histogram("lsml_synth_pass_us{pass=\"" + name + "\"}")
      .record(static_cast<std::uint64_t>(ms * 1000.0));
  const std::uint64_t saved =
      ands_before > ands_after ? ands_before - ands_after : 0;
  reg.histogram("lsml_synth_pass_and_delta{pass=\"" + name + "\"}")
      .record(saved);
}

/// Memo of deterministic runs. Bounded defensively: past the cap new
/// results are simply not remembered (correctness never depends on it).
constexpr std::size_t kMemoMaxEntries = 8192;

std::mutex& memo_mutex() {
  static std::mutex m;
  return m;
}

std::unordered_map<std::uint64_t, SynthResult>& memo_table() {
  static std::unordered_map<std::uint64_t, SynthResult> table;
  return table;
}

/// Smaller is better; depth breaks ties (the seed's final-balance rule).
bool improves(const aig::Aig& candidate, const aig::Aig& best) {
  if (candidate.num_ands() != best.num_ands()) {
    return candidate.num_ands() < best.num_ands();
  }
  return candidate.num_levels() < best.num_levels();
}

}  // namespace

const char* to_string(VerifyStatus status) {
  switch (status) {
    case VerifyStatus::kNotRequested:
      return "-";
    case VerifyStatus::kExact:
      return "exact";
    case VerifyStatus::kUndecided:
      return "undecided";
    case VerifyStatus::kSkippedApprox:
      return "approx";
    case VerifyStatus::kFailed:
      return "failed";
  }
  return "-";
}

bool verify_status_from_string(const std::string& text, VerifyStatus* out) {
  for (const VerifyStatus status :
       {VerifyStatus::kNotRequested, VerifyStatus::kExact,
        VerifyStatus::kUndecided, VerifyStatus::kSkippedApprox,
        VerifyStatus::kFailed}) {
    if (text == to_string(status)) {
      *out = status;
      return true;
    }
  }
  return false;
}

std::uint64_t SynthOptions::fingerprint() const {
  std::uint64_t h = core::hash_combine(0x5b7e9d23c0ffee01ULL, node_budget);
  h = core::hash_combine(h, static_cast<std::uint64_t>(max_rounds));
  h = core::hash_combine(h, static_cast<std::uint64_t>(time_budget_ms));
  h = core::hash_combine(h, approx_seed);
  if (verify_equivalence) {
    // Verification changes observable results (the verify field, plus the
    // repair fallback on failure), so verified runs key apart; the digest
    // of unverified runs is unchanged from before the hook existed.
    h = core::hash_combine(h, 0xcecULL);
    h = core::hash_combine(h, static_cast<std::uint64_t>(verify_conflict_budget));
  }
  return h;
}

std::uint32_t trace_ands_in(const std::vector<PassStats>& trace,
                            std::uint32_t fallback) {
  return trace.empty() ? fallback : trace.front().ands_before;
}

double trace_total_ms(const std::vector<PassStats>& trace) {
  double total = 0.0;
  for (const PassStats& s : trace) {
    total += s.ms;
  }
  return total;
}

std::uint32_t SynthResult::ands_in() const {
  return trace_ands_in(trace, circuit.num_ands());
}

double SynthResult::total_ms() const { return trace_total_ms(trace); }

SynthResult PassManager::run(const aig::Aig& in, const Script& script,
                             core::Rng* rng) const {
  runs_counter().add(1);
  const Clock::time_point start = Clock::now();
  const auto out_of_time = [&] {
    if (options_.time_budget_ms <= 0) {
      return false;
    }
    const double elapsed =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    return elapsed > static_cast<double>(options_.time_budget_ms);
  };

  core::Rng fallback_rng(options_.approx_seed);
  core::Rng& approx_rng = rng != nullptr ? *rng : fallback_rng;

  SynthResult result;
  const auto timed = [&result](const std::string& name, const aig::Aig& from,
                               auto&& fn) {
    PassStats stats;
    stats.pass = name;
    stats.ands_before = from.num_ands();
    stats.levels_before = from.num_levels();
    // Span names must outlive the tracer's rings; pass spellings are
    // dynamic, so intern them (only when tracing is actually on).
    obs::ScopedSpan span(
        obs::Tracer::enabled() ? obs::intern_name(name) : nullptr, "synth");
    const Clock::time_point t0 = Clock::now();
    aig::Aig to = fn();
    stats.ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    stats.ands_after = to.num_ands();
    stats.levels_after = to.num_levels();
    record_pass_metrics(name, stats.ms, stats.ands_before, stats.ands_after);
    result.trace.push_back(std::move(stats));
    return to;
  };
  const auto run_approx = [&](const aig::Aig& from, std::uint32_t budget,
                              std::uint32_t protect_depth) {
    aig::ApproxOptions approx;
    approx.node_budget = budget;
    approx.protect_depth = protect_depth;
    Pass spell;
    spell.kind = PassKind::kApprox;
    spell.node_budget = budget;
    return timed(spell.spelling(), from, [&] {
      return aig::approximate_to_budget(from, approx, approx_rng);
    });
  };
  // Approximation can stall when output-protection shields every node;
  // dropping the shield always reaches the budget on nonzero circuits.
  const auto shrink_to = [&](aig::Aig circuit, std::uint32_t budget) {
    if (circuit.num_ands() > budget) {
      circuit = run_approx(circuit, budget,
                           aig::ApproxOptions{}.protect_depth);
    }
    if (circuit.num_ands() > budget) {
      circuit = run_approx(circuit, budget, /*protect_depth=*/0);
    }
    return circuit;
  };

  aig::Aig current = in;
  // The monotonicity baseline: a run never beats cleanup by less than zero.
  aig::Aig best = in.cleanup();
  bool timed_out = false;
  // Set once any approx/const step runs: the function differs from `in`
  // on purpose, so the verify hook has nothing exact left to certify.
  bool function_changed = false;
  const int rounds = options_.max_rounds > 1 ? options_.max_rounds : 1;
  for (int round = 0; round < rounds && !timed_out; ++round) {
    const std::uint32_t at_round_start = current.num_ands();
    for (const Pass& pass : script.passes) {
      if (out_of_time()) {
        timed_out = true;
        break;
      }
      // Every preset opens with "c"; reuse the baseline cleanup there
      // instead of cleaning the raw circuit twice back to back.
      const bool is_baseline =
          round == 0 && &pass == script.passes.data() &&
          pass.kind == PassKind::kCleanup;
      switch (pass.kind) {
        case PassKind::kCleanup:
          current = timed("c", current, [&] {
            return is_baseline ? best : current.cleanup();
          });
          break;
        case PassKind::kBalance:
          current = timed("b", current, [&] { return aig::balance(current); });
          break;
        case PassKind::kRewrite:
        case PassKind::kRefactor:
          current = timed(pass.spelling(), current, [&] {
            return aig::rewrite(current, pass.effective_cut_size(),
                                pass.effective_cuts_per_node());
          });
          break;
        case PassKind::kFraig:
          current = timed(pass.spelling(), current, [&] {
            sat::FraigOptions fraig_options;
            fraig_options.conflict_budget = pass.effective_conflict_budget();
            return sat::fraig(current, fraig_options, approx_rng);
          });
          break;
        case PassKind::kApprox: {
          const std::uint32_t budget =
              pass.node_budget > 0 ? pass.node_budget : options_.node_budget;
          if (budget > 0 && current.num_ands() > budget) {
            current = shrink_to(std::move(current), budget);
            function_changed = true;
            // The function changed: earlier snapshots are incomparable.
            best = current;
          }
          break;
        }
      }
      if (pass.kind != PassKind::kApprox && improves(current, best)) {
        best = current;
      }
    }
    // Another round only pays while the script keeps shrinking the AIG.
    if (current.num_ands() >= at_round_start) {
      break;
    }
  }
  // Hand back the best snapshot. Recorded in the trace whenever it differs
  // from where the script ended, so the trace always reconciles with the
  // returned circuit even when a late pass regressed.
  if (current.num_ands() != best.num_ands() ||
      current.num_levels() != best.num_levels()) {
    current = timed("restore", current, [&] { return best; });
  } else {
    current = best;
  }

  // Budget guarantee: approximate down if the script left the circuit
  // over, escalating until the cap provably holds.
  if (options_.node_budget > 0 && current.num_ands() > options_.node_budget) {
    current = shrink_to(std::move(current), options_.node_budget);
    function_changed = true;
  }
  if (options_.node_budget > 0 && current.num_ands() > options_.node_budget) {
    // Pathological fallback: a constant circuit always fits any budget.
    // Each output gets its own majority constant under random simulation.
    function_changed = true;
    current = timed("const", current, [&] {
      constexpr std::size_t kPatterns = 1024;
      std::vector<core::BitVec> patterns(current.num_pis(),
                                         core::BitVec(kPatterns));
      std::vector<const core::BitVec*> pi_values;
      pi_values.reserve(patterns.size());
      for (auto& p : patterns) {
        p.randomize(approx_rng);
        pi_values.push_back(&p);
      }
      const auto sim = current.simulate(pi_values);
      aig::Aig constant(current.num_pis());
      for (std::size_t o = 0; o < current.num_outputs(); ++o) {
        constant.add_output(2 * sim[o].count() >= kPatterns ? aig::kLitTrue
                                                            : aig::kLitFalse);
      }
      return constant;
    });
  }

  // The verify_equivalence hook: certify the whole script exact with one
  // SAT call on the (input, output) miter. Failure never escapes as a
  // wrong circuit — the run falls back to the input's cleanup.
  if (options_.verify_equivalence) {
    if (function_changed) {
      result.verify = VerifyStatus::kSkippedApprox;
    } else {
      sat::CecStatus cec_status = sat::CecStatus::kUndecided;
      current = timed("verify", current, [&] {
        sat::CecLimits limits;
        limits.conflict_budget = options_.verify_conflict_budget;
        cec_status = sat::cec(in, current, limits).status;
        return current;
      });
      switch (cec_status) {
        case sat::CecStatus::kEquivalent:
          result.verify = VerifyStatus::kExact;
          break;
        case sat::CecStatus::kUndecided:
          result.verify = VerifyStatus::kUndecided;
          break;
        case sat::CecStatus::kNotEquivalent:
          result.verify = VerifyStatus::kFailed;
          current = timed("restore", current, [&] { return in.cleanup(); });
          if (options_.node_budget > 0 &&
              current.num_ands() > options_.node_budget) {
            // The baseline itself busts the cap; the budget guarantee
            // outranks exactness (and the status already says kFailed).
            current = shrink_to(std::move(current), options_.node_budget);
          }
          break;
      }
    }
  }

  result.circuit = std::move(current);
  return result;
}

SynthResult PassManager::run_cached(const aig::Aig& in,
                                    const Script& script) const {
  if (options_.time_budget_ms > 0) {
    return run(in, script);  // time-dependent results are never memoized
  }
  const std::uint64_t key = core::hash_combine(
      core::hash_combine(in.content_hash(), script.fingerprint()),
      options_.fingerprint());
  {
    std::lock_guard<std::mutex> lock(memo_mutex());
    const auto it = memo_table().find(key);
    if (it != memo_table().end()) {
      memo_hits_counter().add(1);
      return it->second;
    }
  }
  SynthResult result = run(in, script);
  {
    std::lock_guard<std::mutex> lock(memo_mutex());
    if (memo_table().size() < kMemoMaxEntries) {
      memo_table().emplace(key, result);
    }
  }
  return result;
}

std::uint64_t PassManager::runs_executed() { return runs_counter().load(); }

std::uint64_t PassManager::memo_hits() { return memo_hits_counter().load(); }

void PassManager::reset_counters() {
  runs_counter().reset();
  memo_hits_counter().reset();
}

void PassManager::clear_memo() {
  std::lock_guard<std::mutex> lock(memo_mutex());
  memo_table().clear();
}

std::uint64_t Pipeline::fingerprint() const {
  return core::hash_combine(script.fingerprint(), options.fingerprint());
}

// default_pipeline / set_default_pipeline live in script_search.cpp now:
// they are shims over the synth::OptRequest process default, kept in one
// translation unit so the two views can never disagree.

}  // namespace lsml::synth
