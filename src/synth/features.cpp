#include "synth/features.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "core/bits.hpp"

namespace lsml::synth {
namespace {

std::string double_repr(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

bool parse_double(const std::string& text, double* out) {
  const char* begin = text.c_str();
  char* end = nullptr;
  *out = std::strtod(begin, &end);
  return end != begin && *end == '\0';
}

/// floor(log2(v + 1)): the log-scale size bucket. 0 -> 0, 1 -> 1, ...
std::uint32_t log_bucket(std::uint32_t v) {
  std::uint32_t b = 0;
  std::uint64_t x = static_cast<std::uint64_t>(v) + 1;
  while (x > 1) {
    x >>= 1;
    ++b;
  }
  return b;
}

/// AND gates in the cone of `root`, stamped against `mark` with `stamp`.
std::uint32_t cone_ands(const aig::Aig& g, aig::Lit root,
                        std::vector<std::uint32_t>* mark,
                        std::uint32_t stamp,
                        std::vector<std::uint32_t>* stack) {
  std::uint32_t count = 0;
  stack->clear();
  const std::uint32_t root_var = aig::lit_var(root);
  if (g.is_and(root_var) && (*mark)[root_var] != stamp) {
    (*mark)[root_var] = stamp;
    stack->push_back(root_var);
  }
  while (!stack->empty()) {
    const std::uint32_t var = stack->back();
    stack->pop_back();
    ++count;
    const aig::Node n = g.node(var);
    for (const aig::Lit fanin : {n.fanin0, n.fanin1}) {
      const std::uint32_t v = aig::lit_var(fanin);
      if (g.is_and(v) && (*mark)[v] != stamp) {
        (*mark)[v] = stamp;
        stack->push_back(v);
      }
    }
  }
  return count;
}

}  // namespace

FeatureVector extract_features(const aig::Aig& g) {
  FeatureVector f;
  f.num_pis = g.num_pis();
  f.num_pos = static_cast<std::uint32_t>(g.num_outputs());
  f.num_ands = g.num_ands();
  f.num_levels = g.num_levels();

  const std::vector<std::uint32_t> levels = g.levels();
  const std::vector<std::uint32_t> fanouts = g.fanout_counts();
  const std::uint32_t num_nodes = g.num_nodes();

  std::uint64_t fanout_sum = 0;
  for (std::uint32_t var = 1; var < num_nodes; ++var) {
    if (fanouts[var] > f.max_fanout) {
      f.max_fanout = fanouts[var];
    }
    if (g.is_and(var)) {
      fanout_sum += fanouts[var];
      // Depth octile of this gate; gates sit at levels 1..num_levels.
      // Levels above the output depth (dangling logic) clamp to the top.
      const std::uint32_t level = levels[var] > 0 ? levels[var] - 1 : 0;
      std::size_t bucket =
          f.num_levels == 0
              ? 0
              : static_cast<std::size_t>(
                    (static_cast<std::uint64_t>(level) *
                     kLevelHistogramBuckets) /
                    f.num_levels);
      if (bucket >= kLevelHistogramBuckets) {
        bucket = kLevelHistogramBuckets - 1;
      }
      f.level_histogram[bucket] += 1.0;
    }
  }
  if (f.num_ands > 0) {
    f.avg_fanout =
        static_cast<double>(fanout_sum) / static_cast<double>(f.num_ands);
    for (double& h : f.level_histogram) {
      h /= static_cast<double>(f.num_ands);
    }
  }

  std::vector<std::uint32_t> mark(num_nodes, 0);
  std::vector<std::uint32_t> stack;
  std::uint64_t cone_sum = 0;
  for (std::size_t o = 0; o < g.num_outputs(); ++o) {
    const std::uint32_t c = cone_ands(
        g, g.output(o), &mark, static_cast<std::uint32_t>(o + 1), &stack);
    cone_sum += c;
    if (c > f.max_cone) {
      f.max_cone = c;
    }
  }
  if (f.num_pos > 0) {
    f.avg_cone =
        static_cast<double>(cone_sum) / static_cast<double>(f.num_pos);
  }
  return f;
}

std::uint64_t FeatureVector::bucket_hash() const {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL * (kFeatureSchemaVersion + 1);
  h = core::hash_combine(h, log_bucket(num_ands));
  h = core::hash_combine(h, log_bucket(num_levels));
  h = core::hash_combine(h, log_bucket(num_pis));
  h = core::hash_combine(h, num_pos > 8 ? 8 : num_pos);
  h = core::hash_combine(h, log_bucket(max_fanout));
  for (const double frac : level_histogram) {
    // Quantize each octile's mass to fifths: enough to tell shapes apart,
    // coarse enough that one rewritten gate does not move the bucket.
    const auto q = static_cast<std::uint64_t>(frac * 4.0 + 0.5);
    h = core::hash_combine(h, q);
  }
  return h;
}

std::string FeatureVector::bucket_name() const {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "fb-%016llx",
                static_cast<unsigned long long>(bucket_hash()));
  return buf;
}

std::string FeatureVector::str() const {
  std::ostringstream os;
  os << "fv v" << kFeatureSchemaVersion << " pis " << num_pis << " pos "
     << num_pos << " ands " << num_ands << " levels " << num_levels
     << " maxfo " << max_fanout << " maxcone " << max_cone << " avgfo "
     << double_repr(avg_fanout) << " avgcone " << double_repr(avg_cone)
     << " hist";
  for (const double h : level_histogram) {
    os << ' ' << double_repr(h);
  }
  return os.str();
}

bool FeatureVector::parse(const std::string& text, FeatureVector* out) {
  std::istringstream is(text);
  std::string tag;
  const auto expect = [&is, &tag](const char* key) {
    return static_cast<bool>(is >> tag) && tag == key;
  };
  const auto read_double = [&is, &tag](double* value) {
    return static_cast<bool>(is >> tag) && parse_double(tag, value);
  };
  FeatureVector f;
  if (!expect("fv") ||
      !expect(("v" + std::to_string(kFeatureSchemaVersion)).c_str()) ||
      !expect("pis") || !(is >> f.num_pis) || !expect("pos") ||
      !(is >> f.num_pos) || !expect("ands") || !(is >> f.num_ands) ||
      !expect("levels") || !(is >> f.num_levels) || !expect("maxfo") ||
      !(is >> f.max_fanout) || !expect("maxcone") || !(is >> f.max_cone) ||
      !expect("avgfo") || !read_double(&f.avg_fanout) || !expect("avgcone") ||
      !read_double(&f.avg_cone) || !expect("hist")) {
    return false;
  }
  for (double& h : f.level_histogram) {
    if (!read_double(&h)) {
      return false;
    }
  }
  *out = f;
  return true;
}

double feature_distance(const FeatureVector& a, const FeatureVector& b) {
  const auto log1 = [](double v) { return std::log(1.0 + v); };
  const auto sq = [](double d) { return d * d; };
  double d = 0.0;
  d += sq(log1(a.num_ands) - log1(b.num_ands));
  d += sq(log1(a.num_levels) - log1(b.num_levels));
  d += sq(log1(a.num_pis) - log1(b.num_pis));
  d += sq(log1(a.num_pos) - log1(b.num_pos));
  d += sq(log1(a.max_fanout) - log1(b.max_fanout));
  d += sq(log1(a.avg_fanout) - log1(b.avg_fanout));
  d += sq(log1(a.avg_cone) - log1(b.avg_cone));
  for (std::size_t i = 0; i < kLevelHistogramBuckets; ++i) {
    d += sq(a.level_histogram[i] - b.level_histogram[i]);
  }
  return std::sqrt(d);
}

}  // namespace lsml::synth
