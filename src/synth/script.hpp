#pragma once
// Declarative optimization scripts for the synth::PassManager.
//
// A Script is a named sequence of passes over an AIG, in the spirit of an
// ABC command line: `"b; rw; b; rw -k 6"` balances, rewrites with 4-input
// cuts, balances again and finishes with a refactor-sized rewrite. Scripts
// are data, not code: they parse from strings, print back canonically, and
// fingerprint stably so cache keys can cover "which pipeline produced this
// circuit". Presets mirror the ABC recipes every contest team leaned on.
//
// Pass vocabulary (aliases in parentheses):
//   c  (cleanup)   drop logic outside the output cones
//   b  (balance)   rebuild AND trees balanced, reducing depth
//   rw (rewrite)   cut-based ISOP resynthesis      [-k cut size, -c cuts/node]
//   rf (refactor)  rewrite with larger cuts        [-k cut size, -c cuts/node]
//   fs (fraig)     SAT sweeping: simulation-guided candidate classes,
//                  budgeted CDCL merge proofs      [-c conflicts/probe,
//                                                   0 = unlimited]
//   approx         simulation-guided constant replacement down to a node
//                  budget [-n budget]; the only pass that may change the
//                  function. approx and fs both consume randomness (fs for
//                  its simulation patterns only — it never changes the
//                  function, and sat::cec can certify that).

#include <cstdint>
#include <string>
#include <vector>

namespace lsml::synth {

enum class PassKind {
  kCleanup,
  kBalance,
  kRewrite,
  kRefactor,
  kFraig,
  kApprox,
};

/// One pass invocation. Zero-valued knobs mean "use the kind's default"
/// (rw: k=4, rf: k=6, both: 8 cuts/node; fs: 1000 conflicts/probe;
/// approx: SynthOptions.node_budget).
struct Pass {
  PassKind kind = PassKind::kCleanup;
  int cut_size = 0;               ///< rw/rf only
  int cuts_per_node = 0;          ///< rw/rf only
  int conflict_budget = 0;        ///< fs only, per SAT probe; -1 = unlimited
                                  ///< (spelled "fs -c 0" in scripts)
  std::uint32_t node_budget = 0;  ///< approx only

  /// Effective cut size after defaulting (rw: 4, rf: 6).
  [[nodiscard]] int effective_cut_size() const;
  [[nodiscard]] int effective_cuts_per_node() const;
  /// Effective fs conflict budget (default 1000; -1 spells "unlimited",
  /// returned as 0 to match sat::FraigOptions).
  [[nodiscard]] std::int64_t effective_conflict_budget() const;

  /// Canonical spelling, e.g. "rw", "rf -k 5", "approx -n 1000". Defaults
  /// are omitted so equal behavior spells (and fingerprints) equal.
  [[nodiscard]] std::string spelling() const;
};

struct Script {
  std::string name;  ///< preset name, or "custom" for parsed scripts
  std::vector<Pass> passes;

  /// Canonical "p1; p2; ..." form; parse(str()) round-trips.
  [[nodiscard]] std::string str() const;

  /// Stable digest of the canonical spelling. Participates in on-disk
  /// cache keys (suite::ResultCache), so changing the spelling of any pass
  /// requires bumping suite::kResultCacheSchemaVersion.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Parses a ';'-separated pass list ("b;rw;b;rw -k 6"). Whitespace is
  /// free. Throws std::invalid_argument with context on unknown passes,
  /// unknown options, or malformed values.
  static Script parse(const std::string& text);

  /// Returns the named preset; throws std::invalid_argument for unknown
  /// names. Presets: "fast", "resyn2", "resyn2fs", "compress2max".
  static Script preset(const std::string& name);
  static std::vector<std::string> preset_names();

  /// Preset lookup first, then parse: what CLI surfaces accept.
  static Script named_or_parse(const std::string& text);

  /// Single-pass "approx -n <budget>" script: the portfolios' over-budget
  /// fallback, expressed as a script instead of an ad-hoc call.
  static Script approx_to(std::uint32_t node_budget);
};

}  // namespace lsml::synth
