#pragma once
// LOSTIN-lite structural features of an AIG.
//
// A FeatureVector is the cheap, deterministic circuit description the
// script search learns over: gate count, depth, a level histogram, fanout
// and output-cone statistics, PI/PO counts. Nothing here simulates the
// circuit — extraction is a handful of linear traversals — so features can
// be computed for every optimization request without measurable cost.
//
// Two derived quantities matter downstream:
//   - bucket_hash(): a coarse quantized digest. Circuits whose features
//     land in the same bucket are treated as "the same kind of circuit" by
//     the experience table (suite::ResultCache team key "scripts").
//   - feature_distance(): a scale-free metric for the nearest-feature
//     policy when no exact bucket is stored.
// Both are pinned by tests; changing either invalidates stored experience,
// which kFeatureSchemaVersion (mixed into every bucket hash) makes safe.

#include <array>
#include <cstdint>
#include <string>

#include "aig/aig.hpp"

namespace lsml::synth {

/// Mixed into every bucket hash: bump when extraction, quantization, or
/// the serialized form changes, so stale experience entries become misses
/// instead of mapping old features onto new buckets.
inline constexpr std::uint32_t kFeatureSchemaVersion = 1;

/// Depth octiles of the AND-gate level histogram.
inline constexpr std::size_t kLevelHistogramBuckets = 8;

struct FeatureVector {
  std::uint32_t num_pis = 0;
  std::uint32_t num_pos = 0;
  std::uint32_t num_ands = 0;
  std::uint32_t num_levels = 0;
  /// Largest fanout over all nodes (output uses included).
  std::uint32_t max_fanout = 0;
  /// Largest single-output cone, in AND gates.
  std::uint32_t max_cone = 0;
  /// Mean fanout over AND gates.
  double avg_fanout = 0.0;
  /// Mean single-output cone size, in AND gates.
  double avg_cone = 0.0;
  /// Fraction of AND gates whose level falls in each depth octile.
  std::array<double, kLevelHistogramBuckets> level_histogram{};

  /// Coarse quantized digest: the experience-table key. Equal for
  /// structurally similar circuits (log-bucketed sizes, quantized
  /// histogram), stable across processes.
  [[nodiscard]] std::uint64_t bucket_hash() const;
  /// "fb-<hex16(bucket_hash)>": the experience entry's benchmark name.
  [[nodiscard]] std::string bucket_name() const;

  /// One-line serialization (hexfloat doubles, bit-exact round-trip).
  [[nodiscard]] std::string str() const;
  /// Inverse of str(); false on malformed or version-stale text.
  static bool parse(const std::string& text, FeatureVector* out);
};

/// Extracts features with a few linear traversals. Deterministic: equal
/// structures yield equal vectors.
[[nodiscard]] FeatureVector extract_features(const aig::Aig& g);

/// Scale-free distance for the nearest-feature policy: L2 over log-scaled
/// sizes plus the level histogram. Symmetric, zero iff the normalized
/// coordinates coincide.
[[nodiscard]] double feature_distance(const FeatureVector& a,
                                      const FeatureVector& b);

}  // namespace lsml::synth
