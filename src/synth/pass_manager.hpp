#pragma once
// The circuit-optimization layer every contest deliverable goes through.
//
// A PassManager runs a Script (see synth/script.hpp) over an AIG under a
// SynthOptions contract and returns the optimized circuit together with a
// PassStats trace (per-pass size/depth deltas and wall time) — the
// observable, named-pass view of synthesis that DRiLLS/LOSTIN-style work
// treats as the environment. Two guarantees hold for every run:
//
//   1. Budget: when options.node_budget > 0, the returned circuit has at
//      most that many AND gates — by approximation if the script's own
//      passes cannot get there (the contest's 5000-AND cap, made a type-
//      level contract instead of a per-team convention).
//   2. Monotonicity: functionality-preserving scripts never return more
//      AND gates than `in.cleanup()` — a script that hurts is discarded
//      in favor of the best intermediate snapshot.
//
// run_cached() additionally memoizes whole runs in a process-wide table
// keyed by (input structure, script, options): structurally identical
// circuits — common across teams sharing learners — are optimized once
// per process, and every thread gets bit-identical results.

#include <cstdint>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "core/rng.hpp"
#include "synth/script.hpp"

namespace lsml::synth {

/// Outcome of the optional post-script SAT certification (see
/// SynthOptions::verify_equivalence).
enum class VerifyStatus {
  kNotRequested,  ///< verification was off for this run
  kExact,         ///< SAT-proved equivalent to the input circuit
  kUndecided,     ///< the verification budget ran out before a verdict
  kSkippedApprox, ///< an approx/const pass changed the function on purpose
  kFailed,        ///< a pass broke the function; the run returned the safe
                  ///< cleanup baseline instead of the broken circuit
};

/// Canonical spellings ("-", "exact", "undecided", "approx", "failed");
/// stable, they participate in leaderboards and the on-disk result cache.
[[nodiscard]] const char* to_string(VerifyStatus status);
/// Inverse of to_string; false on unknown spellings (corrupt cache entry).
bool verify_status_from_string(const std::string& text, VerifyStatus* out);

/// The contract a PassManager run honors.
struct SynthOptions {
  /// Hard AND-gate cap on the returned circuit; 0 = uncapped. Enforced by
  /// an appended approx pass when the script leaves the circuit over.
  std::uint32_t node_budget = 5000;
  /// Script repetitions: the script re-runs while it keeps shrinking the
  /// circuit, up to this many times (the seed's optimize(max_rounds)).
  int max_rounds = 3;
  /// Soft wall-clock budget: once exceeded, no further pass *starts*
  /// (running passes finish; guarantees are still enforced). 0 =
  /// unlimited. Nonzero budgets trade run-to-run determinism for latency,
  /// so the memo table skips them.
  std::int64_t time_budget_ms = 0;
  /// Seed of the approximation RNG when the caller provides none, so
  /// budget enforcement is reproducible from the options alone.
  std::uint64_t approx_seed = 0x5eed5eedULL;
  /// Post-script verify_equivalence hook: SAT-check (sat::cec) that the
  /// returned circuit still computes the input's function, certifying the
  /// whole script exact. Runs with the approx RNG untouched. When a pass
  /// intentionally changed the function (approx, const fallback) the
  /// check is skipped and reported as such; when verification *fails* the
  /// run returns the input's cleanup — the safe exact baseline — instead
  /// of the broken circuit.
  bool verify_equivalence = false;
  /// Conflict budget of the certification SAT call; 0 = unlimited.
  std::int64_t verify_conflict_budget = 1 << 20;

  /// Stable digest; participates in on-disk cache keys (same caveat as
  /// Script::fingerprint).
  [[nodiscard]] std::uint64_t fingerprint() const;
};

/// What one pass did: sizes around it and how long it took.
struct PassStats {
  std::string pass;  ///< canonical spelling (Pass::spelling())
  std::uint32_t ands_before = 0;
  std::uint32_t ands_after = 0;
  std::uint32_t levels_before = 0;
  std::uint32_t levels_after = 0;
  double ms = 0.0;
};

/// AND gates entering a trace (`fallback` when it is empty). The single
/// source of truth for trace aggregation — BenchmarkResult and
/// SynthResult both report through these.
[[nodiscard]] std::uint32_t trace_ands_in(const std::vector<PassStats>& trace,
                                          std::uint32_t fallback);
/// Total wall time across a trace.
[[nodiscard]] double trace_total_ms(const std::vector<PassStats>& trace);

struct SynthResult {
  aig::Aig circuit{0};
  std::vector<PassStats> trace;
  /// Post-script SAT certification verdict (kNotRequested unless
  /// SynthOptions::verify_equivalence was set).
  VerifyStatus verify = VerifyStatus::kNotRequested;

  /// AND gates entering the pipeline (before the implicit cleanup).
  [[nodiscard]] std::uint32_t ands_in() const;
  /// Total wall time across all passes.
  [[nodiscard]] double total_ms() const;
};

class PassManager {
 public:
  explicit PassManager(SynthOptions options = {}) : options_(options) {}

  [[nodiscard]] const SynthOptions& options() const { return options_; }

  /// Runs the script. `rng` feeds approx passes; pass nullptr to draw from
  /// a fresh Rng(options.approx_seed) stream instead (fully deterministic
  /// in (in, script, options)).
  [[nodiscard]] SynthResult run(const aig::Aig& in, const Script& script,
                                core::Rng* rng = nullptr) const;

  /// run() through the process-wide memo table. Only deterministic runs
  /// are memoized (no caller rng by construction; time-budgeted runs
  /// bypass the table). Thread-safe.
  [[nodiscard]] SynthResult run_cached(const aig::Aig& in,
                                       const Script& script) const;

  // ---------------------------------------------------------- observability
  /// Process-wide counters (tests assert "pipeline ran exactly once").
  static std::uint64_t runs_executed();  ///< real runs, memo hits excluded
  static std::uint64_t memo_hits();
  static void reset_counters();
  /// Drops all memoized results (tests; never required for correctness).
  static void clear_memo();

 private:
  SynthOptions options_;
};

/// A pipeline: which script to run under which contract.
///
/// DEPRECATED as the process-wide default: synth::OptRequest (see
/// synth/script_search.hpp) is the unified optimization request all
/// drivers construct now, and learn::finish_model optimizes through the
/// installed default_optimizer(). The functions below remain as shims —
/// set_default_pipeline forwards to set_default_opt_request, and
/// default_pipeline() mirrors the installed request (an "auto" request
/// mirrors as an empty script named "auto"; its options stay
/// authoritative) — so existing learners and tests work unmodified. See
/// the README's "Script search" section for the removal plan.
struct Pipeline {
  Script script;
  SynthOptions options;

  [[nodiscard]] std::uint64_t fingerprint() const;
};

/// Initial default: preset "fast" under default SynthOptions (5000-AND
/// budget, 3 rounds) — the seed's aig::optimize behavior plus the cap.
/// DEPRECATED: read synth::default_opt_request() instead.
[[nodiscard]] const Pipeline& default_pipeline();

/// Replaces the process default and returns the previous value. Install
/// before spawning contest workers; the default itself is not locked.
/// DEPRECATED: call synth::set_default_opt_request instead.
Pipeline set_default_pipeline(Pipeline pipeline);

/// RAII default swap for drivers and tests (deprecated alongside the
/// functions it wraps; prefer synth::ScopedOptRequest).
class ScopedPipeline {
 public:
  explicit ScopedPipeline(Pipeline pipeline)
      : previous_(set_default_pipeline(std::move(pipeline))) {}
  ~ScopedPipeline() { set_default_pipeline(std::move(previous_)); }
  ScopedPipeline(const ScopedPipeline&) = delete;
  ScopedPipeline& operator=(const ScopedPipeline&) = delete;

 private:
  Pipeline previous_;
};

}  // namespace lsml::synth
