#include "synth/script.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "core/bits.hpp"

namespace lsml::synth {

namespace {

constexpr int kDefaultRewriteCut = 4;
constexpr int kDefaultRefactorCut = 6;
constexpr int kDefaultCutsPerNode = 8;
constexpr int kDefaultFraigConflicts = 1000;

const char* kind_spelling(PassKind kind) {
  switch (kind) {
    case PassKind::kCleanup:
      return "c";
    case PassKind::kBalance:
      return "b";
    case PassKind::kRewrite:
      return "rw";
    case PassKind::kRefactor:
      return "rf";
    case PassKind::kFraig:
      return "fs";
    case PassKind::kApprox:
      return "approx";
  }
  return "?";
}

std::vector<std::string> tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::istringstream is(text);
  std::string token;
  while (is >> token) {
    tokens.push_back(token);
  }
  return tokens;
}

int parse_positive_int(const std::string& pass_text, const std::string& flag,
                       const std::string& value) {
  char* end = nullptr;
  const long v = std::strtol(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || v <= 0 || v > 1 << 24) {
    throw std::invalid_argument("synth script: bad value '" + value +
                                "' for " + flag + " in '" + pass_text + "'");
  }
  return static_cast<int>(v);
}

Pass parse_pass(const std::string& pass_text) {
  const std::vector<std::string> tokens = tokenize(pass_text);
  if (tokens.empty()) {
    throw std::invalid_argument("synth script: empty pass (stray ';'?)");
  }
  Pass pass;
  const std::string& head = tokens[0];
  if (head == "c" || head == "cleanup") {
    pass.kind = PassKind::kCleanup;
  } else if (head == "b" || head == "balance") {
    pass.kind = PassKind::kBalance;
  } else if (head == "rw" || head == "rewrite") {
    pass.kind = PassKind::kRewrite;
  } else if (head == "rf" || head == "refactor") {
    pass.kind = PassKind::kRefactor;
  } else if (head == "fs" || head == "fraig") {
    pass.kind = PassKind::kFraig;
  } else if (head == "approx") {
    pass.kind = PassKind::kApprox;
  } else {
    throw std::invalid_argument("synth script: unknown pass '" + head + "'");
  }
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string& flag = tokens[i];
    if (i + 1 >= tokens.size()) {
      throw std::invalid_argument("synth script: " + flag +
                                  " needs a value in '" + pass_text + "'");
    }
    if (flag == "-c" && pass.kind == PassKind::kFraig) {
      // fs alone admits zero: "fs -c 0" is the canonical unlimited
      // spelling (stored as -1 so it stays distinct from "use default").
      const std::string& text = tokens[++i];
      const int value = text == "0" ? 0
                                    : parse_positive_int(pass_text, flag,
                                                         text);
      pass.conflict_budget = value == 0 ? -1 : value;
      continue;
    }
    const int value = parse_positive_int(pass_text, flag, tokens[++i]);
    const bool resynth = pass.kind == PassKind::kRewrite ||
                         pass.kind == PassKind::kRefactor;
    if (flag == "-k" && resynth) {
      if (value < 2 || value > 6) {
        throw std::invalid_argument(
            "synth script: -k must be in [2, 6] in '" + pass_text + "'");
      }
      pass.cut_size = value;
    } else if (flag == "-c" && resynth) {
      pass.cuts_per_node = value;
    } else if (flag == "-n" && pass.kind == PassKind::kApprox) {
      pass.node_budget = static_cast<std::uint32_t>(value);
    } else {
      throw std::invalid_argument("synth script: option '" + flag +
                                  "' does not apply in '" + pass_text + "'");
    }
  }
  return pass;
}

}  // namespace

int Pass::effective_cut_size() const {
  if (cut_size > 0) {
    return cut_size;
  }
  return kind == PassKind::kRefactor ? kDefaultRefactorCut
                                     : kDefaultRewriteCut;
}

int Pass::effective_cuts_per_node() const {
  return cuts_per_node > 0 ? cuts_per_node : kDefaultCutsPerNode;
}

std::int64_t Pass::effective_conflict_budget() const {
  if (conflict_budget < 0) {
    return 0;  // sat::FraigOptions convention: 0 = unlimited
  }
  return conflict_budget > 0 ? conflict_budget : kDefaultFraigConflicts;
}

std::string Pass::spelling() const {
  std::string out = kind_spelling(kind);
  const bool resynth = kind == PassKind::kRewrite || kind == PassKind::kRefactor;
  if (resynth) {
    const int default_cut = kind == PassKind::kRefactor ? kDefaultRefactorCut
                                                        : kDefaultRewriteCut;
    if (cut_size > 0 && cut_size != default_cut) {
      out += " -k " + std::to_string(cut_size);
    }
    if (cuts_per_node > 0 && cuts_per_node != kDefaultCutsPerNode) {
      out += " -c " + std::to_string(cuts_per_node);
    }
  } else if (kind == PassKind::kFraig) {
    if (conflict_budget < 0) {
      out += " -c 0";  // unlimited: distinct spelling, distinct fingerprint
    } else if (conflict_budget > 0 &&
               conflict_budget != kDefaultFraigConflicts) {
      out += " -c " + std::to_string(conflict_budget);
    }
  } else if (kind == PassKind::kApprox && node_budget > 0) {
    out += " -n " + std::to_string(node_budget);
  }
  return out;
}

std::string Script::str() const {
  std::string out;
  for (const Pass& pass : passes) {
    if (!out.empty()) {
      out += "; ";
    }
    out += pass.spelling();
  }
  return out;
}

std::uint64_t Script::fingerprint() const {
  const std::string text = str();
  return core::fnv1a(text.data(), text.size());
}

Script Script::parse(const std::string& text) {
  Script script;
  script.name = "custom";
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t end = text.find(';', begin);
    const std::string part =
        text.substr(begin, end == std::string::npos ? end : end - begin);
    // Blank segments (trailing ';', doubled separators) are tolerated.
    if (part.find_first_not_of(" \t\n") != std::string::npos) {
      script.passes.push_back(parse_pass(part));
    }
    if (end == std::string::npos) {
      break;
    }
    begin = end + 1;
  }
  if (script.passes.empty()) {
    throw std::invalid_argument("synth script: no passes in '" + text + "'");
  }
  return script;
}

Script Script::preset(const std::string& name) {
  const auto build = [&name](const char* text) {
    Script script = parse(text);
    script.name = name;
    return script;
  };
  if (name == "fast") {
    // The seed's aig::optimize round: balance for depth, rewrite for size.
    return build("c; b; rw");
  }
  if (name == "resyn2") {
    // ABC's resyn2 rhythm (b; rw; rf; b; rw; rwz; b; rfz; rwz; b) without
    // the zero-cost variants, which this rewriter does not distinguish.
    return build("c; b; rw; rf; b; rw; b; rf; b");
  }
  if (name == "resyn2fs") {
    // resyn2 followed by SAT sweeping: fraiging merges the functionally-
    // equivalent nodes the cut rewriter cannot see, then a cleanup drops
    // the released cones. Never worse than resyn2 (fs only merges).
    return build("c; b; rw; rf; b; rw; b; rf; b; fs; c");
  }
  if (name == "compress2max") {
    // Heaviest preset: alternate cut sizes up to the 6-leaf maximum.
    return build("c; b; rw; rf; b; rw -k 6; b; rf -k 5; rw; b");
  }
  throw std::invalid_argument("synth script: unknown preset '" + name +
                              "' (try: fast, resyn2, resyn2fs, "
                              "compress2max)");
}

std::vector<std::string> Script::preset_names() {
  return {"fast", "resyn2", "resyn2fs", "compress2max"};
}

Script Script::approx_to(std::uint32_t node_budget) {
  Script script;
  script.name = "approx";
  Pass pass;
  pass.kind = PassKind::kApprox;
  pass.node_budget = node_budget;
  script.passes.push_back(pass);
  return script;
}

Script Script::named_or_parse(const std::string& text) {
  for (const std::string& name : preset_names()) {
    if (text == name) {
      return preset(name);
    }
  }
  return parse(text);
}

}  // namespace lsml::synth
