#pragma once
// Learned per-circuit script search behind the unified optimization API.
//
// OptRequest is the one way to ask for circuit optimization: which script
// (a preset, a pass list, or "auto"), under which SynthOptions contract,
// and — for auto — with which search seed/budget and experience store.
// All four optimization surfaces construct it (suite::RunnerOptions, the
// run/synth/serve CLI flags, the serve `synth` op), replacing the smeared
// script+budget+verify plumbing each used to hand-roll.
//
// "auto" runs ScriptSearch: a DRiLLS/LOSTIN-lite epsilon-greedy search
// over pass sequences, seeded from the presets, mutating and crossing
// synth::Script candidates, scoring every candidate through
// PassManager::run_cached (repeated probes are memo hits). What a search
// learns persists as one experience row per feature bucket
// (synth::FeatureVector::bucket_hash) in a suite::ResultCache under team
// key "scripts"; later requests whose circuit lands in a stored bucket are
// answered by the nearest-feature policy — stored script re-validated
// against the presets, no mutation loop — which is both the warm-cache
// speedup and the "never worse than fast" guarantee (the presets always
// compete).
//
// Determinism: the search RNG derives from
// Rng(search_seed).split(bucket, content_hash), the experience snapshot is
// loaded once at construction (same-run writes are never read back), and
// ties break on (ands, levels, pass count, canonical text) — so a fixed
// seed plus the same cache state yields byte-identical scripts at any
// thread count.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "suite/result_cache.hpp"
#include "synth/features.hpp"
#include "synth/pass_manager.hpp"
#include "synth/script.hpp"

namespace lsml::synth {

/// Spelled as the script of an OptRequest to ask for search.
inline constexpr const char* kAutoScript = "auto";

/// The unified optimization request: script-or-auto, budgets, verify,
/// seed. Construct one, hand it to a ScriptSearch (or install it as the
/// process default) — nothing else decides how circuits get optimized.
struct OptRequest {
  /// Preset name, pass script text, or "auto" (kAutoScript).
  std::string script = "fast";
  /// The PassManager contract every candidate and the final run honor.
  SynthOptions options;
  /// Root seed of the auto search (per-circuit streams split off it).
  std::uint64_t search_seed = 2020;
  /// Candidate evaluations per cold search, presets included.
  int search_budget = 16;
  /// suite::ResultCache directory backing the experience table; empty
  /// disables persistence (every auto request searches cold).
  std::string experience_dir;

  [[nodiscard]] bool is_auto() const { return script == kAutoScript; }
  /// The fixed script this request names; throws std::invalid_argument on
  /// auto requests or unparseable text (validate() reports the latter).
  [[nodiscard]] Script resolved_script() const;
  /// Throws std::invalid_argument with context when `script` is neither
  /// "auto", a preset, nor valid pass syntax. CLI surfaces call this once
  /// and map the exception to their usage-error exit.
  void validate() const;
  /// Canonical display form: the resolved script's text, or "auto".
  [[nodiscard]] std::string script_display() const;
  /// Stable digest over resolved behavior: canonical script text (or the
  /// auto marker plus search seed/budget) and the SynthOptions. The
  /// experience directory is state, not configuration, and stays out.
  /// Participates in on-disk cache keys (suite::ResultCache), so recipe
  /// changes require bumping suite::kResultCacheSchemaVersion.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Shim for synth::Pipeline holders: same options, script = the
  /// pipeline's canonical text.
  static OptRequest from_pipeline(const Pipeline& pipeline);
};

/// What an optimization request produced: the pass-manager result plus
/// which script ran and how it was chosen.
struct OptOutcome {
  SynthResult result;
  /// The script that produced `result` (the request's own for fixed
  /// requests; the search/policy winner for auto).
  Script script;
  /// Auto request answered by a cold epsilon-greedy search.
  bool searched = false;
  /// Auto request answered from the experience table (warm bucket).
  bool from_policy = false;
  /// Candidate scripts evaluated (0 for fixed requests).
  int candidates_evaluated = 0;
};

class ScriptSearch {
 public:
  /// Snapshots the experience table of `request.experience_dir` (team key
  /// "scripts") at construction; the instance never re-reads it, so
  /// results cannot depend on what concurrent tasks store mid-run.
  explicit ScriptSearch(OptRequest request);

  [[nodiscard]] const OptRequest& request() const { return request_; }
  [[nodiscard]] std::size_t experience_size() const {
    return experience_.size();
  }

  /// Optimizes under the construction request.
  [[nodiscard]] OptOutcome optimize(const aig::Aig& in) const {
    return optimize(in, request_);
  }
  /// Optimizes under a per-call request (the serve op's per-request
  /// script/budget overrides). The experience snapshot and store stay the
  /// construction-time ones.
  [[nodiscard]] OptOutcome optimize(const aig::Aig& in,
                                    const OptRequest& request) const;

  /// The trained nearest-feature policy, search-free: the stored script of
  /// the exact feature bucket, else of the nearest stored features, else
  /// preset "resyn2" (the static prior when nothing is stored yet).
  [[nodiscard]] Script recommend(const FeatureVector& features) const;

 private:
  struct Experience {
    std::uint64_t bucket = 0;
    FeatureVector features;
    Script script;
  };

  [[nodiscard]] const Experience* exact_bucket(std::uint64_t bucket) const;

  OptRequest request_;
  suite::ResultCache store_;
  std::vector<Experience> experience_;  ///< sorted by bucket, unique
};

// ------------------------------------------------- process default plumbing
// The OptRequest successor of the deprecated synth::Pipeline global (see
// pass_manager.hpp): learn::finish_model and the contest engines read the
// installed optimizer; drivers install theirs before spawning workers.
// set_default_pipeline remains as a shim that forwards here, so existing
// learners and tests keep working unmodified.

/// Copy of the installed default request.
[[nodiscard]] OptRequest default_opt_request();

/// The installed optimizer (its experience snapshot was loaded when the
/// current default was set). Grab once per task; the pointer stays valid
/// across a concurrent re-install.
[[nodiscard]] std::shared_ptr<const ScriptSearch> default_optimizer();

/// Replaces the process default and returns the previous request. Loads
/// the experience snapshot for auto requests — install before spawning
/// workers; the default itself is not locked against mid-task swaps.
OptRequest set_default_opt_request(OptRequest request);

/// RAII default swap for drivers and tests.
class ScopedOptRequest {
 public:
  explicit ScopedOptRequest(OptRequest request)
      : previous_(set_default_opt_request(std::move(request))) {}
  ~ScopedOptRequest() { set_default_opt_request(std::move(previous_)); }
  ScopedOptRequest(const ScopedOptRequest&) = delete;
  ScopedOptRequest& operator=(const ScopedOptRequest&) = delete;

 private:
  OptRequest previous_;
};

}  // namespace lsml::synth
