#include "synth/script_search.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "core/bits.hpp"
#include "core/rng.hpp"

namespace fs = std::filesystem;

namespace lsml::synth {
namespace {

/// Experience rows live under this suite::ResultCache team key.
constexpr const char* kExperienceTeam = "scripts";

/// Longest script the mutation/crossover operators will grow.
constexpr std::size_t kMaxPasses = 12;

/// Exploration rate of the epsilon-greedy parent draw.
constexpr double kEpsilon = 0.3;
/// Probability of crossover (vs mutation) once the pool has two members.
constexpr double kCrossoverP = 0.25;

/// Function-preserving mutation vocabulary. approx stays out: budget
/// enforcement is the PassManager's contract, not a search move.
const std::vector<Pass>& pass_vocabulary() {
  static const std::vector<Pass> vocab = [] {
    std::vector<Pass> v;
    v.push_back({PassKind::kCleanup, 0, 0, 0, 0});
    v.push_back({PassKind::kBalance, 0, 0, 0, 0});
    v.push_back({PassKind::kRewrite, 0, 0, 0, 0});
    v.push_back({PassKind::kRewrite, 5, 0, 0, 0});
    v.push_back({PassKind::kRewrite, 6, 0, 0, 0});
    v.push_back({PassKind::kRefactor, 0, 0, 0, 0});
    v.push_back({PassKind::kRefactor, 4, 0, 0, 0});
    v.push_back({PassKind::kRefactor, 5, 0, 0, 0});
    v.push_back({PassKind::kFraig, 0, 0, 0, 0});
    v.push_back({PassKind::kFraig, 0, 0, 300, 0});
    return v;
  }();
  return vocab;
}

Pass random_pass(core::Rng& rng) {
  const std::vector<Pass>& vocab = pass_vocabulary();
  return vocab[rng.below(vocab.size())];
}

Script mutate(const Script& parent, core::Rng& rng) {
  Script child = parent;
  child.name = "auto";
  if (child.passes.empty()) {
    child.passes.push_back(random_pass(rng));
    return child;
  }
  const std::size_t size = child.passes.size();
  switch (rng.below(4)) {
    case 0:  // insert (falls back to replace at the length cap)
      if (size < kMaxPasses) {
        child.passes.insert(
            child.passes.begin() + static_cast<std::ptrdiff_t>(
                                       rng.below(size + 1)),
            random_pass(rng));
        break;
      }
      [[fallthrough]];
    case 2:  // replace
      child.passes[rng.below(size)] = random_pass(rng);
      break;
    case 1:  // erase (a single pass gets replaced instead)
      if (size > 1) {
        child.passes.erase(child.passes.begin() +
                           static_cast<std::ptrdiff_t>(rng.below(size)));
      } else {
        child.passes[0] = random_pass(rng);
      }
      break;
    default:  // swap
      std::swap(child.passes[rng.below(size)], child.passes[rng.below(size)]);
      break;
  }
  return child;
}

Script crossover(const Script& a, const Script& b, core::Rng& rng) {
  const std::size_t ca = rng.below(a.passes.size() + 1);
  const std::size_t cb = rng.below(b.passes.size() + 1);
  Script child;
  child.name = "auto";
  child.passes.assign(a.passes.begin(),
                      a.passes.begin() + static_cast<std::ptrdiff_t>(ca));
  child.passes.insert(child.passes.end(),
                      b.passes.begin() + static_cast<std::ptrdiff_t>(cb),
                      b.passes.end());
  if (child.passes.empty()) {
    return mutate(a, rng);
  }
  if (child.passes.size() > kMaxPasses) {
    child.passes.resize(kMaxPasses);
  }
  return child;
}

struct Candidate {
  Script script;
  SynthResult result;
};

/// The search's strict weak order: fewer AND gates, then fewer levels
/// (PassManager's improves() rule), then shorter and lexicographically
/// smaller scripts so ties never depend on evaluation order.
bool better(const Candidate& a, const Candidate& b) {
  const std::uint32_t aa = a.result.circuit.num_ands();
  const std::uint32_t ba = b.result.circuit.num_ands();
  if (aa != ba) {
    return aa < ba;
  }
  const std::uint32_t al = a.result.circuit.num_levels();
  const std::uint32_t bl = b.result.circuit.num_levels();
  if (al != bl) {
    return al < bl;
  }
  if (a.script.passes.size() != b.script.passes.size()) {
    return a.script.passes.size() < b.script.passes.size();
  }
  return a.script.str() < b.script.str();
}

}  // namespace

Script OptRequest::resolved_script() const {
  if (is_auto()) {
    throw std::invalid_argument(
        "OptRequest: 'auto' names no fixed script (run it through a "
        "ScriptSearch)");
  }
  return Script::named_or_parse(script);
}

void OptRequest::validate() const {
  if (!is_auto()) {
    (void)resolved_script();  // throws std::invalid_argument with context
  }
}

std::string OptRequest::script_display() const {
  return is_auto() ? std::string(kAutoScript) : resolved_script().str();
}

std::uint64_t OptRequest::fingerprint() const {
  std::uint64_t h;
  if (is_auto()) {
    static constexpr char kTag[] = "opt:auto";
    h = core::fnv1a(kTag, sizeof(kTag) - 1);
    h = core::hash_combine(h, search_seed);
    h = core::hash_combine(h, static_cast<std::uint64_t>(search_budget));
  } else {
    h = resolved_script().fingerprint();
  }
  return core::hash_combine(h, options.fingerprint());
}

OptRequest OptRequest::from_pipeline(const Pipeline& pipeline) {
  OptRequest request;
  request.script = pipeline.script.str();
  request.options = pipeline.options;
  return request;
}

ScriptSearch::ScriptSearch(OptRequest request)
    : request_(std::move(request)), store_(request_.experience_dir) {
  if (!store_.enabled()) {
    return;
  }
  const fs::path table = fs::path(store_.dir()) / kExperienceTeam;
  std::error_code ec;
  if (!fs::is_directory(table, ec)) {
    return;
  }
  // Deterministic snapshot: sorted file list, one row per bucket, rows
  // whose features no longer hash to their stored bucket (older
  // quantization) are dropped as misses.
  std::vector<std::string> stems;
  for (const auto& entry : fs::directory_iterator(table, ec)) {
    if (entry.path().extension() == ".result") {
      stems.push_back(entry.path().stem().string());
    }
  }
  std::sort(stems.begin(), stems.end());
  for (const std::string& stem : stems) {
    // "<benchmark>-<hash16>": split off the trailing content-hash hex.
    if (stem.size() < 18 || stem[stem.size() - 17] != '-') {
      continue;
    }
    char* end = nullptr;
    const std::string hash_text = stem.substr(stem.size() - 16);
    const std::uint64_t bucket = std::strtoull(hash_text.c_str(), &end, 16);
    if (end != hash_text.c_str() + hash_text.size()) {
      continue;
    }
    const std::string benchmark = stem.substr(0, stem.size() - 17);
    const auto task =
        store_.load(kExperienceTeam, benchmark, bucket, /*want_aag=*/true);
    if (!task) {
      continue;
    }
    Experience exp;
    exp.bucket = bucket;
    if (!FeatureVector::parse(task->aag, &exp.features) ||
        exp.features.bucket_hash() != bucket) {
      continue;
    }
    try {
      exp.script = Script::parse(task->result.method);
    } catch (const std::invalid_argument&) {
      continue;  // written under a retired pass vocabulary
    }
    exp.script.name = "learned";
    experience_.push_back(std::move(exp));
  }
  std::sort(experience_.begin(), experience_.end(),
            [](const Experience& a, const Experience& b) {
              return a.bucket < b.bucket;
            });
  experience_.erase(
      std::unique(experience_.begin(), experience_.end(),
                  [](const Experience& a, const Experience& b) {
                    return a.bucket == b.bucket;
                  }),
      experience_.end());
}

const ScriptSearch::Experience* ScriptSearch::exact_bucket(
    std::uint64_t bucket) const {
  const auto it = std::lower_bound(
      experience_.begin(), experience_.end(), bucket,
      [](const Experience& e, std::uint64_t b) { return e.bucket < b; });
  if (it == experience_.end() || it->bucket != bucket) {
    return nullptr;
  }
  return &*it;
}

Script ScriptSearch::recommend(const FeatureVector& features) const {
  if (experience_.empty()) {
    return Script::preset("resyn2");  // the static prior
  }
  if (const Experience* exact = exact_bucket(features.bucket_hash())) {
    return exact->script;
  }
  const Experience* nearest = &experience_.front();
  double nearest_d = feature_distance(features, nearest->features);
  for (const Experience& e : experience_) {
    const double d = feature_distance(features, e.features);
    // experience_ is sorted by bucket, so strict < is order-independent.
    if (d < nearest_d) {
      nearest = &e;
      nearest_d = d;
    }
  }
  return nearest->script;
}

OptOutcome ScriptSearch::optimize(const aig::Aig& in,
                                  const OptRequest& request) const {
  OptOutcome out;
  if (!request.is_auto()) {
    out.script = request.resolved_script();
    out.result = PassManager(request.options).run_cached(in, out.script);
    return out;
  }

  const FeatureVector features = extract_features(in);
  const std::uint64_t bucket = features.bucket_hash();
  // Candidates are scored without certification; only the winner pays for
  // --verify (below). Everything else about the contract — node budget,
  // rounds, approx seed — applies to every probe.
  SynthOptions probe = request.options;
  probe.verify_equivalence = false;
  const PassManager manager(probe);

  const auto start = std::chrono::steady_clock::now();
  const auto out_of_time = [&] {
    if (request.options.time_budget_ms <= 0) {
      return false;
    }
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    return elapsed > request.options.time_budget_ms;
  };

  std::vector<Candidate> pool;
  std::unordered_set<std::string> seen;
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  std::size_t best = kNone;
  int evals = 0;
  const auto consider = [&](Script script) {
    if (!seen.insert(script.str()).second) {
      return;
    }
    SynthResult result = manager.run_cached(in, script);
    pool.push_back({std::move(script), std::move(result)});
    ++evals;
    if (best == kNone || better(pool.back(), pool[best])) {
      best = pool.size() - 1;
    }
  };

  // The presets always compete: auto can never do worse than any of them
  // (in particular `fast` and `resyn2`), warm or cold.
  for (const std::string& name : Script::preset_names()) {
    consider(Script::preset(name));
    if (out_of_time()) {
      break;
    }
  }

  const Experience* warm = exact_bucket(bucket);
  if (warm != nullptr) {
    // Policy path: re-validate the learned script against the presets and
    // stop — no mutation loop, which is the warm-cache speedup.
    if (!out_of_time()) {
      consider(warm->script);
    }
    out.from_policy = true;
  } else {
    // Cold path: epsilon-greedy over mutations/crossovers, seeded with the
    // presets above plus the nearest-feature prior.
    if (!experience_.empty() && !out_of_time()) {
      consider(recommend(features));
    }
    core::Rng rng =
        core::Rng(request.search_seed).split(bucket, in.content_hash());
    const int budget = request.search_budget > evals ? request.search_budget
                                                     : evals;
    while (evals < budget && !out_of_time()) {
      const Candidate& parent =
          rng.flip(kEpsilon) ? pool[rng.below(pool.size())] : pool[best];
      Script child;
      bool fresh = false;
      for (int tries = 0; tries < 8 && !fresh; ++tries) {
        if (pool.size() >= 2 && rng.flip(kCrossoverP)) {
          const Candidate& other = pool[rng.below(pool.size())];
          child = crossover(parent.script, other.script, rng);
        } else {
          child = mutate(parent.script, rng);
        }
        fresh = seen.find(child.str()) == seen.end();
      }
      if (!fresh) {
        ++evals;  // neighborhood exhausted; spend the step and move on
        continue;
      }
      consider(std::move(child));
    }
    out.searched = true;
    if (store_.enabled() && best != kNone) {
      // One row per feature bucket: the winning script plus the features
      // it was trained on (so the nearest-feature policy can rank it).
      suite::CachedTask task;
      task.result.benchmark = features.bucket_name();
      task.result.method = pool[best].script.str();
      task.result.opt_script = pool[best].script.str();
      task.result.num_ands = pool[best].result.circuit.num_ands();
      task.result.num_levels = pool[best].result.circuit.num_levels();
      task.aag = features.str() + "\n";
      store_.store(kExperienceTeam, task.result.benchmark, bucket, task);
    }
  }

  out.candidates_evaluated = evals;
  out.script = pool[best].script;
  if (request.options.verify_equivalence) {
    // Certify only the winner, under the caller's full options.
    out.result = PassManager(request.options).run_cached(in, out.script);
  } else {
    out.result = std::move(pool[best].result);
  }
  return out;
}

// ------------------------------------------------- process default plumbing

namespace {

struct DefaultOpt {
  std::mutex mutex;
  std::shared_ptr<const ScriptSearch> optimizer;
  /// Legacy view for default_pipeline() readers; kept in lockstep with
  /// `optimizer` (an auto request mirrors as an empty script named
  /// "auto" — its options are still authoritative).
  Pipeline mirror{Script::preset("fast"), SynthOptions{}};
};

DefaultOpt& default_storage() {
  static DefaultOpt storage;
  return storage;
}

Pipeline mirror_of(const OptRequest& request) {
  Pipeline pipeline;
  pipeline.options = request.options;
  if (request.is_auto()) {
    pipeline.script = Script{"auto", {}};
  } else {
    try {
      pipeline.script = request.resolved_script();
    } catch (const std::invalid_argument&) {
      pipeline.script = Script{"invalid", {}};
    }
  }
  return pipeline;
}

std::shared_ptr<const ScriptSearch> ensure_optimizer_locked(DefaultOpt& d) {
  if (d.optimizer == nullptr) {
    d.optimizer = std::make_shared<ScriptSearch>(OptRequest{});
  }
  return d.optimizer;
}

}  // namespace

OptRequest default_opt_request() {
  DefaultOpt& d = default_storage();
  std::lock_guard<std::mutex> lock(d.mutex);
  return ensure_optimizer_locked(d)->request();
}

std::shared_ptr<const ScriptSearch> default_optimizer() {
  DefaultOpt& d = default_storage();
  std::lock_guard<std::mutex> lock(d.mutex);
  return ensure_optimizer_locked(d);
}

OptRequest set_default_opt_request(OptRequest request) {
  // The snapshot load does I/O; keep it outside the lock.
  auto optimizer = std::make_shared<ScriptSearch>(request);
  DefaultOpt& d = default_storage();
  std::lock_guard<std::mutex> lock(d.mutex);
  OptRequest previous =
      d.optimizer != nullptr ? d.optimizer->request() : OptRequest{};
  d.optimizer = std::move(optimizer);
  d.mirror = mirror_of(d.optimizer->request());
  return previous;
}

// Deprecated Pipeline shim (declared in pass_manager.hpp): the storage now
// lives here so the Pipeline view and the OptRequest default can never
// disagree. Legacy writers keep working; readers of default_pipeline()
// observe exactly what they installed.

const Pipeline& default_pipeline() {
  DefaultOpt& d = default_storage();
  std::lock_guard<std::mutex> lock(d.mutex);
  ensure_optimizer_locked(d);
  return d.mirror;  // same install-before-workers contract as ever
}

Pipeline set_default_pipeline(Pipeline pipeline) {
  auto optimizer =
      std::make_shared<ScriptSearch>(OptRequest::from_pipeline(pipeline));
  DefaultOpt& d = default_storage();
  std::lock_guard<std::mutex> lock(d.mutex);
  ensure_optimizer_locked(d);
  Pipeline previous = std::move(d.mirror);
  d.optimizer = std::move(optimizer);
  // Keep the caller's exact Pipeline (preset names included) as the view.
  d.mirror = std::move(pipeline);
  return previous;
}

}  // namespace lsml::synth
